(** The kernel code recovery log — FACE-CHANGE's forensic output.

    Every invalid-opcode recovery appends an entry carrying the paper's
    provenance evidence: which process (and which kernel view) reached
    outside its boundary, the recovered function(s), the full call-stack
    backtrace (rendered with symbols, [<UNKNOWN>] for frames in hidden
    code), and any callers recovered {e instantly} because their return
    address landed on a misdecoding [0x0b 0x0f] boundary (Fig. 3). *)

type frame = {
  addr : int;
  rendered : string;
  view_bytes : int list;
      (** the first bytes at [addr] as the active view presented them at
          trap time — UD2 fill ([0xf 0xb 0xf 0xb …]) for a lazily
          recoverable caller, the misdecoding [0xb 0xf …] stream for an
          odd-offset one (Fig. 3's hex dumps) *)
}

type entry = {
  cycle : int;
  pid : int;
  comm : string;
  view_app : string;  (** the view being enforced when the fault hit *)
  fault_addr : int;
  recovered : (int * int * string) list;
      (** (start, stop, rendered start) — the lazily recovered function *)
  instant : (int * int * string) list;
      (** functions recovered instantly for odd-return callers *)
  backtrace : frame list;
  interrupt_context : bool;
      (** the backtrace roots in the interrupt entry path *)
  unknown_frames : bool;
      (** some frame could not be symbolized — hidden/injected code *)
}

type t

val create : ?cap:int -> unit -> t
(** [cap] (default 4096) bounds the {e retained} entries: a soak run
    appending recoveries forever keeps at most [cap] of the newest
    entries in memory; older ones are dropped (in amortized-O(1)
    batches) and only counted. *)

val add : t -> entry -> unit
val entries : t -> entry list
(** Chronological — the retained window (at most [cap] entries). *)

val count : t -> int
(** Total entries ever added: retained plus dropped. *)

val cap : t -> int

val dropped : t -> int
(** Entries trimmed by the retention cap (surfaced as the
    [fc.recovery_log_dropped] gauge). *)

val restore_dropped : t -> int -> unit
(** Snapshot-restore hook: reinstate the dropped count alongside a log
    rebuilt from {!of_string}. *)

val clear : t -> unit

val recovered_symbols : t -> string list
(** The rendered start symbol of every recovery, chronological — the
    paper's "kernel code recovery log" summary used in Fig. 4 and
    Table II. *)

val recovered_names : t -> string list
(** Like {!recovered_symbols} but just the bare function names (the
    [<name+0x0>] part), deduplicated, chronological. *)

val any_unknown : t -> bool

val callers : entry -> frame list
(** The backtrace minus its head: the head is the faulting address
    itself, so these are the caller frames (what Fig. 3/5 render). *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

val entry_to_json : entry -> Fc_obs.Jsonx.t
(** The full forensic entry — recovered/instant ranges with symbols,
    backtrace frames with view-presented bytes, context flags. *)

val to_json : t -> Fc_obs.Jsonx.t
(** [{"count": …, "entries": […]}], chronological. *)

val to_string : t -> string
(** Line-oriented serialization of the full log (entries, backtraces,
    instant recoveries) — the evidence artifact an administrator archives. *)

val of_string : ?cap:int -> string -> (t, string) result
(** Inverse of {!to_string} (frame byte dumps are preserved). *)

val save : t -> string -> unit
val load : string -> (t, string) result
