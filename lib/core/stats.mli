(** One-stop run statistics — the summary block the CLI and examples
    print after an enforced run. *)

type t = {
  guest_cycles : int;
  rounds : int;
  context_switches : int;
  vcpus : int;
  breakpoint_exits : int;
  invalid_opcode_exits : int;
  hypervisor_cycles : int;  (** charged by the cost model *)
  view_switches : int;
  switches_skipped : int;
  switches_deferred : int;
  recoveries : int;
  recovered_bytes : int;
  views_loaded : int;
  view_pages : int;  (** pages mapped across all loaded views *)
  shared_frames : int;
      (** frame allocations avoided by sharing (pages − distinct frames) *)
  cow_breaks : int;  (** shared frames privatized by copy-on-write *)
}

val capture : Facechange.t -> t
(** Snapshot the counters of a FACE-CHANGE instance and its guest.  The
    result is a read-only projection of the guest's {!Fc_obs.Metrics}
    registry (the ["os.*"], ["hyp.*"] and ["fc.*"] instruments). *)

val overhead_fraction : t -> float
(** Hypervisor-charged cycles as a fraction of all guest cycles.
    [0.] when no guest cycles have elapsed. *)

val fields : t -> (string * int) list
(** Every integer field as a [(name, value)] pair, in declaration order —
    the stable key set exporters and the CI gate rely on. *)

val to_json : t -> Fc_obs.Jsonx.t
(** [fields] plus ["overhead_fraction"] as a JSON object. *)

val pp : Format.formatter -> t -> unit
