(** One-stop run statistics — the summary block the CLI and examples
    print after an enforced run. *)

type per_app = {
  a_run_cycles : int;
      (** guest cycles elapsed while this comm was current (run-slice
          accounting; on a multi-vCPU guest slices absorb the other
          vCPUs' interleaved cycles, so treat as an upper bound there) *)
  a_run_slices : int;  (** scheduling slices begun *)
  a_cycles_charged : int;  (** hypervisor cost-model cycles paid *)
  a_view_switches : int;
  a_recoveries : int;
  a_recovered_bytes : int;
  a_cow_breaks : int;  (** CoW privatizations in this app's view *)
}
(** One application's share of the global counters.  Summing a field
    over every app yields the matching global (attribution sites
    increment both), except [a_run_cycles]/[a_run_slices], which have no
    global counterpart. *)

type t = {
  guest_cycles : int;
  rounds : int;
  context_switches : int;
  vcpus : int;
  breakpoint_exits : int;
  invalid_opcode_exits : int;
  hypervisor_cycles : int;  (** charged by the cost model *)
  view_switches : int;
  switches_skipped : int;
  switches_deferred : int;
  recoveries : int;
  recovered_bytes : int;
  views_loaded : int;
  view_pages : int;  (** pages mapped across all loaded views *)
  shared_frames : int;
      (** frame allocations avoided by sharing (pages − distinct frames) *)
  cow_breaks : int;  (** shared frames privatized by copy-on-write *)
  storms : int;  (** recovery storms the governor detected *)
  degradations : int;  (** fallbacks to the full view (incl. quarantines) *)
  renarrows : int;  (** degraded comms restored after cooldown *)
  quarantines : int;  (** comms pinned to the full view for good *)
  broken_backtraces : int;  (** rbp walks cut short by a malformed chain *)
  per_app : (string * per_app) list;
      (** per-application attribution, sorted by comm/app name *)
}

val capture : Facechange.t -> t
(** Snapshot the counters of a FACE-CHANGE instance and its guest.  The
    result is a read-only projection of the guest's {!Fc_obs.Metrics}
    registry (the ["os.*"], ["hyp.*"] and ["fc.*"] instruments). *)

val merge : t list -> t
(** Pointwise sum of every global field, with the [per_app] lists merged
    by comm (fields summed) and re-sorted.  The merge is associative and
    commutative, so folding per-guest captures in any grouping — per
    domain first, then across domains, as the fleet host does — yields
    the same aggregate.  Counts like [vcpus] and [rounds] become fleet
    totals.  [merge []] is all-zero. *)

val attribution_ok : t -> bool
(** The per-app invariant the chaos and fleet gates pin: summing each
    attributed field over [per_app] reproduces the matching global
    (charged cycles, view switches, recoveries, recovered bytes, CoW
    breaks).  Holds by construction for a single capture; {!merge}
    preserves it. *)

val overhead_fraction : t -> float
(** Hypervisor-charged cycles as a fraction of all guest cycles.
    [0.] when no guest cycles have elapsed. *)

val fields : t -> (string * int) list
(** Every {e global} integer field as a [(name, value)] pair, in
    declaration order — the stable key set exporters and the CI gate rely
    on.  Per-app attribution is not flattened in here; see
    {!per_app_fields}. *)

val per_app_fields : per_app -> (string * int) list
(** One app's attribution fields as [(name, value)] pairs. *)

val to_json : t -> Fc_obs.Jsonx.t
(** [fields] plus ["overhead_fraction"] and a ["per_app"] object (one
    member per app, keyed by comm) as a JSON object. *)

val pp : Format.formatter -> t -> unit
