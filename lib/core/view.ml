module Hyp = Fc_hypervisor.Hypervisor
module Cost = Fc_hypervisor.Cost
module Os = Fc_machine.Os
module Layout = Fc_kernel.Layout
module Image = Fc_kernel.Image
module Ept = Fc_mem.Ept
module Phys = Fc_mem.Phys_mem
module Frame_cache = Fc_mem.Frame_cache
module Scan = Fc_isa.Scan
module Range_list = Fc_ranges.Range_list
module Segment = Fc_ranges.Segment
module Span = Fc_ranges.Span
module Obs = Fc_obs.Obs
module Metrics = Fc_obs.Metrics
module Event = Fc_obs.Event

type t = {
  hyp : Hyp.t;
  index : int;
  config : Fc_profiler.View_config.t;
  share : bool;
  tables : (int * Ept.table) list;
  page_frames : (int, int) Hashtbl.t; (* gpa_page -> backing frame *)
  pages_materialized : Metrics.counter; (* view.pages_materialized, shared *)
  cow_breaks_c : Metrics.counter; (* view.cow_breaks{app}, accumulates
                                     across unload/reload of the app *)
  mutable loaded_bytes : int;
  mutable cow_breaks : int;
  mutable destroyed : bool;
}

let index t = t.index
let config t = t.config
let app t = t.config.Fc_profiler.View_config.app
let tables t = t.tables
let dirs t = List.map fst t.tables
let private_page_count t = Hashtbl.length t.page_frames
let loaded_bytes t = t.loaded_bytes
let cow_breaks t = t.cow_breaks

let frame_count t =
  let seen = Hashtbl.create 64 in
  Hashtbl.iter (fun _ f -> Hashtbl.replace seen f ()) t.page_frames;
  Hashtbl.length seen

let shared_page_count t =
  let phys = Os.phys (Hyp.os t.hyp) in
  Hashtbl.fold
    (fun _ f n -> if Phys.refcount phys f > 1 then n + 1 else n)
    t.page_frames 0

let ud2_pattern = [ Fc_isa.Insn.ud2_first_byte; Fc_isa.Insn.ud2_second_byte ]

(* Find the view's table for a directory; the tables are created up front
   from copies of the original tables so data/unknown pages keep their
   real mapping (the paper "reuses any entries ... that point to kernel
   data"). *)
let table_for t dir = List.assoc_opt dir t.tables

let map_page t gpa_page frame =
  let os = Hyp.os t.hyp in
  (match table_for t (Ept.dir_of_page gpa_page) with
  | Some table ->
      let idx = Ept.slot_of_page gpa_page in
      let prev = Ept.table_get table ~idx in
      Ept.table_set table ~idx (Some frame);
      (* The table just mutated may already be installed in a vCPU's EPT
         (installed tables are shared by reference), and [table_set]
         moves no directory entry, so no generation advanced: without an
         explicit invalidation a COW break / on-demand page would serve
         stale bytes.  Under tagged caching the invalidation is
         frame-targeted: every cached translation validates
         [Phys_mem.version] of its fill-time frame, so touching the
         displaced frame kills exactly the entries that resolve through
         it — one page's worth, in whichever views cached it — and every
         other translation (and superblock stamp) in this view survives
         untouched.  A previously empty slot needs nothing: translations
         are never cached negatively.  With tags off the legacy global
         epoch bump is the (pinned) invalidation mechanism. *)
      if Os.tagged_on os then begin
        Os.note_divergent_page os ~gpa_page;
        Os.note_view_binding os ~gpa_page ~view:t.index ~frame;
        match prev with
        | Some old when old <> frame -> Phys.touch (Os.phys os) old
        | Some _ | None -> ()
      end
      else Os.flush_fetch_tlbs ~view:t.index ~cause:Os.Flush_cow os
  | None -> invalid_arg "View: page outside view directories");
  Hashtbl.replace t.page_frames gpa_page frame

(* A page created on demand (a code-recovery write landing outside the
   materialized set) is about to be written, so it is allocated private
   in both modes. *)
let private_page t gpa_page =
  match Hashtbl.find_opt t.page_frames gpa_page with
  | Some frame -> frame
  | None ->
      let phys = Os.phys (Hyp.os t.hyp) in
      let frame = Phys.alloc phys in
      Phys.fill phys ~addr:(Phys.addr_of_frame frame) ~len:Phys.page_size
        ~pattern:ud2_pattern;
      map_page t gpa_page frame;
      Hyp.charge t.hyp Cost.view_page_init;
      frame

let covers t ~gva =
  Layout.is_kernel_address gva
  && Hashtbl.mem t.page_frames (Layout.page_of (Layout.gva_to_gpa gva))

(* Copy-on-write: the first write to a page backed by a shared frame
   privatizes it.  The fresh frame replaces the shared one in the view's
   own table (installed tables are shared by reference, so an active
   view's EPT mapping follows), and the shared frame loses one
   reference.  Deliberately charges {!Cost.cow_break} = 0 cycles —
   sharing must be behavior-invisible. *)
let writable_frame t gpa_page =
  let frame = private_page t gpa_page in
  let phys = Os.phys (Hyp.os t.hyp) in
  if Phys.refcount phys frame <= 1 then frame
  else begin
    let fresh = Phys.alloc phys in
    Phys.copy phys ~src:(Phys.addr_of_frame frame)
      ~dst:(Phys.addr_of_frame fresh) ~len:Phys.page_size;
    Phys.free phys frame;
    map_page t gpa_page fresh;
    t.cow_breaks <- t.cow_breaks + 1;
    Metrics.incr t.cow_breaks_c;
    Frame_cache.note_cow_break (Hyp.frame_cache t.hyp);
    (let obs = Hyp.obs t.hyp in
     if Obs.armed obs then Obs.emit obs (Event.Cow_break { frame; fresh }));
    Hyp.charge t.hyp Cost.cow_break;
    fresh
  end

let write_code t ~gva v =
  let gpa = Layout.gva_to_gpa gva in
  let frame = writable_frame t (Layout.page_of gpa) in
  Phys.write_byte (Os.phys (Hyp.os t.hyp))
    (Phys.addr_of_frame frame + (gpa mod Phys.page_size))
    v

let read_code t ~gva =
  if not (Layout.is_kernel_address gva) then None
  else
    let gpa = Layout.gva_to_gpa gva in
    match Hashtbl.find_opt t.page_frames (Layout.page_of gpa) with
    | Some frame ->
        Some
          (Phys.read_byte (Os.phys (Hyp.os t.hyp))
             (Phys.addr_of_frame frame + (gpa mod Phys.page_size)))
    | None -> Hyp.read_original_code t.hyp gva

(* ---------------- materialization ---------------- *)

(* Record [lo, hi) of original kernel code as loaded, with the same byte
   and cycle accounting an in-place copy would have charged. *)
let note_range t loads ~lo ~hi =
  loads := Range_list.add_range !loads Segment.Base_kernel ~lo ~hi;
  t.loaded_bytes <- t.loaded_bytes + (hi - lo);
  Hyp.charge t.hyp (Cost.code_copy ~bytes:(hi - lo))

(* A profiled span, relaxed to whole containing functions when requested.
   [region_lo, region_hi) bounds the prologue scan (base kernel text, or
   one module's code). *)
let note_span t loads ~whole_function_load ~region_lo ~region_hi (s : Span.t) =
  if not whole_function_load then note_range t loads ~lo:s.Span.lo ~hi:s.Span.hi
  else begin
    let read = Hyp.read_original_code t.hyp in
    let rec go a =
      if a < s.Span.hi then
        match Scan.function_bounds ~read ~lo:region_lo ~hi:region_hi a with
        | Some (start, stop) ->
            note_range t loads ~lo:start ~hi:stop;
            go (max stop (a + 1))
        | None ->
            (* no enclosing prologue (shouldn't happen for profiled code):
               fall back to the raw span *)
            note_range t loads ~lo:a ~hi:s.Span.hi
    in
    go s.Span.lo
  end

(* Build one page's final contents in a host buffer: phase-aligned UD2
   fill, then the covered parts of the load set overlaid from the
   original code.  The interval index makes the overlay O(log n) per
   page plus the covered bytes. *)
let page_contents t loads gpa_page =
  let buf = Bytes.create Phys.page_size in
  for i = 0 to Phys.page_size - 1 do
    Bytes.set_uint8 buf i
      (if i land 1 = 0 then Fc_isa.Insn.ud2_first_byte
       else Fc_isa.Insn.ud2_second_byte)
  done;
  let gva_lo = Layout.gpa_to_gva (gpa_page * Phys.page_size) in
  let window = Span.make ~lo:gva_lo ~hi:(gva_lo + Phys.page_size) in
  List.iter
    (fun (s : Span.t) ->
      for gva = s.Span.lo to s.Span.hi - 1 do
        match Hyp.read_original_code t.hyp gva with
        | Some b -> Bytes.set_uint8 buf (gva - gva_lo) b
        | None -> ()
      done)
    (Range_list.covered_spans loads Segment.Base_kernel window);
  buf

(* Back one page: intern through the hypervisor's content-keyed frame
   cache when sharing, allocate privately otherwise.  Both modes charge
   exactly {!Cost.view_page_init}. *)
let materialize_page t loads gpa_page =
  let phys = Os.phys (Hyp.os t.hyp) in
  let buf = page_contents t loads gpa_page in
  let fill_fresh () =
    let f = Phys.alloc phys in
    Phys.blit_bytes phys ~src:buf ~src_off:0 ~dst:(Phys.addr_of_frame f)
      ~len:Phys.page_size;
    f
  in
  let frame =
    if not t.share then fill_fresh ()
    else
      let cache = Hyp.frame_cache t.hyp in
      let key = Digest.bytes buf in
      match Frame_cache.find cache ~label:(app t) key with
      | Some f -> f
      | None ->
          let f = fill_fresh () in
          Frame_cache.register cache key f;
          f
  in
  map_page t gpa_page frame;
  Metrics.incr t.pages_materialized;
  Hyp.charge t.hyp Cost.view_page_init

let build ~hyp ?(whole_function_load = true) ?(share_frames = true) ~index
    config =
  let os = Hyp.os hyp in
  let image = Os.image os in
  let text_lo = Image.text_base image and text_hi = Image.text_end image in
  let dir_of gva = Ept.dir_of_page (Layout.page_of (Layout.gva_to_gpa gva)) in
  (* collect affected directories: base text + module area *)
  let dirs = ref [] in
  let add_dir d = if not (List.mem d !dirs) then dirs := d :: !dirs in
  let rec sweep gva limit =
    if gva < limit then begin
      add_dir (dir_of gva);
      sweep (gva + (Ept.dir_span_pages * Layout.page_size)) limit
    end
  in
  sweep text_lo text_hi;
  add_dir (dir_of (text_hi - 1));
  sweep Layout.module_area_base Layout.module_area_limit;
  add_dir (dir_of (Layout.module_area_limit - 1));
  let tables =
    List.rev_map
      (fun dir ->
        match Hyp.original_table hyp ~dir with
        | Some table -> (dir, Ept.table_copy table)
        | None -> (dir, Ept.table_create ()))
      !dirs
  in
  let t =
    {
      hyp;
      index;
      config;
      share = share_frames;
      tables;
      page_frames = Hashtbl.create 256;
      pages_materialized =
        Metrics.counter
          (Obs.metrics (Hyp.obs hyp))
          ~subsystem:"view" "pages_materialized";
      cow_breaks_c =
        Metrics.family_counter
          (Metrics.counter_family
             (Obs.metrics (Hyp.obs hyp))
             ~subsystem:"view" "cow_breaks")
          config.Fc_profiler.View_config.app;
      loaded_bytes = 0;
      cow_breaks = 0;
      destroyed = false;
    }
  in
  (* Pass 1: compute the load set — the exact whole-function relaxation
     walk, recorded (as absolute guest-virtual spans) in an interval
     index instead of written byte-by-byte.  Byte and cycle accounting is
     identical to an in-place loader, and identical in both sharing
     modes. *)
  let visible = Hyp.module_list hyp in
  let loads = ref Range_list.empty in
  let ranges = config.Fc_profiler.View_config.ranges in
  List.iter
    (fun seg ->
      match seg with
      | Segment.Base_kernel ->
          List.iter
            (fun s ->
              note_span t loads ~whole_function_load ~region_lo:text_lo
                ~region_hi:text_hi s)
            (Range_list.spans ranges seg)
      | Segment.Kernel_module name -> (
          (* locate the module's current base via the VMI module list;
             a module absent at runtime is skipped *)
          match List.find_opt (fun (n, _, _) -> String.equal n name) visible with
          | None -> ()
          | Some (_, base, size) ->
              List.iter
                (fun s ->
                  note_span t loads ~whole_function_load ~region_lo:base
                    ~region_hi:(base + size) (Span.shift s base))
                (Range_list.spans ranges seg)))
    (Range_list.segments ranges);
  let loads = !loads in
  (* Pass 2: materialize every base text page and the code pages of every
     VMI-visible module from their final contents. *)
  let lo_page = Layout.page_of (Layout.gva_to_gpa text_lo) in
  let hi_page = Layout.page_of (Layout.gva_to_gpa (text_hi - 1)) in
  for p = lo_page to hi_page do
    materialize_page t loads p
  done;
  List.iter
    (fun (_name, base, size) ->
      let lo_page = Layout.page_of (Layout.gva_to_gpa base) in
      let hi_page = Layout.page_of (Layout.gva_to_gpa (base + size - 1)) in
      for p = lo_page to hi_page do
        materialize_page t loads p
      done)
    visible;
  t

let destroy t =
  if not t.destroyed then begin
    t.destroyed <- true;
    let phys = Os.phys (Hyp.os t.hyp) in
    Hashtbl.iter (fun _ frame -> Phys.free phys frame) t.page_frames;
    Hashtbl.reset t.page_frames
  end

(* ---------------- snapshot: freeze / restore ---------------- *)

type frozen = {
  zv_index : int;
  zv_config : string; (* View_config.to_string *)
  zv_share : bool;
  zv_tables : (int * int) list; (* dir -> pool table id, list order kept *)
  zv_page_frames : (int * int) list; (* gpa_page -> frame, sorted *)
  zv_loaded_bytes : int;
  zv_cow_breaks : int;
  zv_destroyed : bool;
}

let freeze t ~table_id =
  {
    zv_index = t.index;
    zv_config = Fc_profiler.View_config.to_string t.config;
    zv_share = t.share;
    zv_tables = List.map (fun (d, tbl) -> (d, table_id tbl)) t.tables;
    zv_page_frames =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.page_frames []);
    zv_loaded_bytes = t.loaded_bytes;
    zv_cow_breaks = t.cow_breaks;
    zv_destroyed = t.destroyed;
  }

let restore ~hyp ~table_of (z : frozen) =
  let config =
    match Fc_profiler.View_config.of_string z.zv_config with
    | Ok c -> c
    | Error e -> invalid_arg ("View.restore: bad embedded config: " ^ e)
  in
  let page_frames = Hashtbl.create 256 in
  List.iter (fun (p, f) -> Hashtbl.replace page_frames p f) z.zv_page_frames;
  (* page frames carry their references through the restored pool, so no
     refcounts are taken here; [destroy] stays balanced *)
  {
    hyp;
    index = z.zv_index;
    config;
    share = z.zv_share;
    tables = List.map (fun (d, id) -> (d, table_of id)) z.zv_tables;
    page_frames;
    pages_materialized =
      Metrics.counter
        (Obs.metrics (Hyp.obs hyp))
        ~subsystem:"view" "pages_materialized";
    cow_breaks_c =
      Metrics.family_counter
        (Metrics.counter_family
           (Obs.metrics (Hyp.obs hyp))
           ~subsystem:"view" "cow_breaks")
        config.Fc_profiler.View_config.app;
    loaded_bytes = z.zv_loaded_bytes;
    cow_breaks = z.zv_cow_breaks;
    destroyed = z.zv_destroyed;
  }
