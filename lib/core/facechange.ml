module Hyp = Fc_hypervisor.Hypervisor
module Cost = Fc_hypervisor.Cost
module Os = Fc_machine.Os
module Cpu = Fc_machine.Cpu
module Process = Fc_machine.Process
module Layout = Fc_kernel.Layout
module Image = Fc_kernel.Image
module Ept = Fc_mem.Ept
module Scan = Fc_isa.Scan
module Obs = Fc_obs.Obs
module Metrics = Fc_obs.Metrics
module Event = Fc_obs.Event

type opts = {
  switch_at_resume : bool;
  same_view_opt : bool;
  whole_function_load : bool;
  instant_recovery : bool;
  share_frames : bool;
}

let default_opts =
  {
    switch_at_resume = true;
    same_view_opt = true;
    whole_function_load = true;
    instant_recovery = true;
    share_frames = true;
  }

let full_view_index = 0

type t = {
  hyp : Hyp.t;
  obs : Obs.t;
  opts : opts;
  mutable views : View.t list;
  mutable bindings : (string * int) list;
  mutable next_index : int;
  active : int array;           (* active view index, per vCPU *)
  pending : int option array;   (* deferred switch armed at resume, per vCPU *)
  ctx_switch_addr : int;
  resume_addr : int;
  all_dirs : int list;
  log : Recovery_log.t;
  switches : Metrics.counter;
  switch_skips : Metrics.counter;
  deferred : Metrics.counter;
  recoveries : Metrics.counter;
  recovered_bytes : Metrics.counter;
  recovery_bytes_h : Metrics.histogram;
  view_build_cycles : Metrics.histogram;
  (* per-app attribution: one member per comm, summing to the globals *)
  switches_f : Metrics.family; (* fc.view_switches{comm} *)
  recoveries_f : Metrics.family; (* fc.recoveries{comm} *)
  recovered_bytes_f : Metrics.family; (* fc.recovered_bytes{comm} *)
  mutable retired_cow_breaks : int;  (* from views since unloaded *)
  (* degradation governor (None = the paper's die-on-unhandled behavior) *)
  governor : Governor.t option;
  saved_bindings : (string, int) Hashtbl.t; (* narrow index while degraded *)
  storms : Metrics.counter;
  degraded_c : Metrics.counter;
  renarrowed_c : Metrics.counter;
  quarantined_c : Metrics.counter;
  broken_walks : Metrics.counter;
  tolerated : Metrics.counter;
  degraded_f : Metrics.family; (* fc.degradations{comm} *)
  mutable enabled : bool;
}

(* The simulator's ground truth for "who pays": the task currently on the
   active vCPU.  Cheaper than the VMI read and always in agreement with
   the run-slice accounting in [Os]. *)
let current_comm t = (Os.current (Hyp.os t.hyp)).Process.name

let span_enter t kind =
  if Obs.armed t.obs then begin
    let os = Hyp.os t.hyp in
    let cur = Os.current os in
    Fc_obs.Span.enter (Obs.spans t.obs) ~vid:(Os.active_vcpu_id os)
      ~pid:cur.Process.pid ~comm:cur.Process.name kind
  end
  else Fc_obs.Span.none

let span_exit t sid = Fc_obs.Span.exit (Obs.spans t.obs) sid

let hyp t = t.hyp
let log t = t.log
let opts t = t.opts
let views t = t.views
let find_view t index = List.find_opt (fun v -> View.index v = index) t.views
let active_index ?(vid = 0) t = t.active.(vid)
let switches t = Metrics.value t.switches
let switch_skips t = Metrics.value t.switch_skips
let deferred_switches t = Metrics.value t.deferred
let recoveries t = Metrics.value t.recoveries
let recovered_bytes t = Metrics.value t.recovered_bytes
let governor t = t.governor
let storms t = Metrics.value t.storms
let degradations t = Metrics.value t.degraded_c
let renarrows t = Metrics.value t.renarrowed_c
let quarantines t = Metrics.value t.quarantined_c
let broken_backtraces t = Metrics.value t.broken_walks
let tolerated_faults t = Metrics.value t.tolerated

let shared_frames t =
  List.fold_left
    (fun n v -> n + View.private_page_count v - View.frame_count v)
    0 t.views

let cow_breaks t =
  List.fold_left (fun n v -> n + View.cow_breaks v) t.retired_cow_breaks t.views

let selector t ~comm =
  match List.assoc_opt comm t.bindings with Some i -> i | None -> full_view_index

let bind t ~comm ~index =
  t.bindings <- (comm, index) :: List.remove_assoc comm t.bindings

let unbind t ~comm = t.bindings <- List.remove_assoc comm t.bindings

(* ---------------- view switching (per-vCPU, the paper's SV-C) ------- *)

(* Install a view's directory entries on one vCPU.  Cost-model parity
   between the two paths is load-bearing: both charge
   [Cost.ept_dir_switch] per directory, so instruction/cycle fingerprints
   are identical with tags on or off and the differential harness can
   hold the tagged toggle to behavior-invisibility. *)
let install_tables t ~vid ~to_index tables =
  let os = Hyp.os t.hyp in
  let ept = Os.ept_of os ~vid in
  if Os.tagged_on os then begin
    (* tagged (VPID-style) switch-in: quiet directory installs plus one
       active-tag change.  Nothing is flushed — translations cached under
       [to_index] in an earlier activation still carry its current
       (view, generation) tag and revalidate by compare. *)
    List.iter
      (fun (dir, table) ->
        Ept.install_dir ept ~dir (Some table);
        Hyp.charge t.hyp Cost.ept_dir_switch)
      tables;
    Ept.set_view ept ~view:to_index
  end
  else begin
    (* legacy path: every set_dir bumps the (single) generation — a full
       fetch-TLB/superblock flush per directory, attributed so the bench
       can show the cost the tags remove *)
    List.iter
      (fun (dir, table) ->
        Ept.set_dir ept ~dir (Some table);
        Hyp.charge t.hyp Cost.ept_dir_switch)
      tables;
    Os.note_flushes os ~cause:Os.Flush_view_switch (List.length tables)
  end

let emit_switch t ~vid ~from_index ~to_index outcome =
  if Obs.armed t.obs then
    Obs.emit t.obs
      (Event.View_switch { vid; from_index; to_index; outcome })

let switch_kernel_view t ~vid index =
  if t.opts.same_view_opt && t.active.(vid) = index then begin
    Metrics.incr t.switch_skips;
    emit_switch t ~vid ~from_index:index ~to_index:index Event.Skipped
  end
  else begin
    (if index = full_view_index then
       install_tables t ~vid ~to_index:index
         (List.filter_map
            (fun dir ->
              Option.map (fun tb -> (dir, tb)) (Hyp.original_table t.hyp ~dir))
            t.all_dirs)
     else
       match find_view t index with
       | Some v -> install_tables t ~vid ~to_index:index (View.tables v)
       | None -> invalid_arg "Facechange: switching to an unloaded view");
    emit_switch t ~vid ~from_index:t.active.(vid) ~to_index:index Event.Switched;
    t.active.(vid) <- index;
    Metrics.incr t.switches;
    Metrics.incr (Metrics.family_counter t.switches_f (current_comm t))
  end

(* ---------------- VMI helpers ---------------- *)

let vmi_in_kernel t pid =
  match Hyp.read_guest_u32 t.hyp (Layout.task_struct_addr ~pid + 20) with
  | Some v -> v <> 0
  | None -> false

(* ---------------- breakpoint handler (Algorithm 1, lines 30-42) ------ *)

(* The resume-userspace breakpoint is a shared guest address: keep it set
   while any vCPU has a deferred switch pending. *)
let sync_resume_breakpoint t =
  if Array.exists Option.is_some t.pending then
    Hyp.set_breakpoint t.hyp t.resume_addr
  else Hyp.clear_breakpoint t.hyp t.resume_addr

(* ---------------- governor escalation ---------------- *)

(* Rebind [comm] to the full kernel view and install it on the vCPU that
   is faulting right now.  The narrow binding is parked in
   [saved_bindings] so the cooldown can restore it. *)
let degrade_to_full t ~vid ~comm ~cycle ~reason =
  let from_index = selector t ~comm in
  if from_index <> full_view_index then begin
    Hashtbl.replace t.saved_bindings comm from_index;
    bind t ~comm ~index:full_view_index
  end;
  t.pending.(vid) <- None;
  sync_resume_breakpoint t;
  if t.active.(vid) <> full_view_index then
    switch_kernel_view t ~vid full_view_index;
  Metrics.incr t.degraded_c;
  Metrics.incr (Metrics.family_counter t.degraded_f comm);
  if Obs.armed t.obs then
    Obs.emit t.obs (Event.Degraded { vid; comm; from_index; reason });
  match t.governor with
  | None -> ()
  | Some g -> (
      match Governor.note_degraded g ~comm ~cycle with
      | `Degraded -> ()
      | `Quarantine ->
          (* too many degradations: never renarrow this comm again *)
          Hashtbl.remove t.saved_bindings comm;
          Metrics.incr t.quarantined_c;
          if Obs.armed t.obs then
            Obs.emit t.obs
              (Event.Quarantined
                 { vid; comm; degradations = Governor.degradations g ~comm }))

let quarantine_comm t ~vid ~comm ~cycle ~reason =
  let from_index = selector t ~comm in
  if from_index <> full_view_index then bind t ~comm ~index:full_view_index;
  Hashtbl.remove t.saved_bindings comm;
  t.pending.(vid) <- None;
  sync_resume_breakpoint t;
  if t.active.(vid) <> full_view_index then
    switch_kernel_view t ~vid full_view_index;
  (match t.governor with
  | Some g -> Governor.quarantine g ~comm ~cycle
  | None -> ());
  Metrics.incr t.degraded_c;
  Metrics.incr (Metrics.family_counter t.degraded_f comm);
  Metrics.incr t.quarantined_c;
  if Obs.armed t.obs then begin
    Obs.emit t.obs (Event.Degraded { vid; comm; from_index; reason });
    Obs.emit t.obs
      (Event.Quarantined
         {
           vid;
           comm;
           degradations =
             (match t.governor with
             | Some g -> Governor.degradations g ~comm
             | None -> 0);
         })
  end

(* Record one degradable event (lazy recovery or broken backtrace) and
   escalate if it tipped the comm into a storm. *)
let governor_note_event t ~vid ~comm ~reason =
  match t.governor with
  | None -> ()
  | Some g -> (
      let cycle = Os.cycles (Hyp.os t.hyp) in
      match Governor.note_event g ~comm ~cycle with
      | `Steady | `Throttle -> ()
      | `Storm n ->
          Metrics.incr t.storms;
          if Obs.armed t.obs then
            Obs.emit t.obs
              (Event.Storm_detected
                 {
                   vid;
                   comm;
                   events = n;
                   window = (Governor.policy g).Governor.window_cycles;
                 });
          degrade_to_full t ~vid ~comm ~cycle
            ~reason:(Printf.sprintf "%s storm: %d events in window" reason n))

(* Policy for the recovery path's dead ends: the paper lets the guest
   die; under a governor the comm falls back to the full view instead and
   execution resumes on the original kernel code. *)
let governed_unhandled t ~vid ~comm reason =
  match t.governor with
  | None -> `Unhandled reason
  | Some g -> (
      let cycle = Os.cycles (Hyp.os t.hyp) in
      match Governor.note_unhandled g ~comm with
      | `Die -> `Unhandled reason
      | `Tolerate ->
          Metrics.incr t.tolerated;
          `Handled
      | `Degrade ->
          degrade_to_full t ~vid ~comm ~cycle ~reason;
          `Handled
      | `Quarantine ->
          quarantine_comm t ~vid ~comm ~cycle ~reason;
          `Handled)

let handle_kernel_view_trap t (_regs : Cpu.regs) addr =
  Hyp.charge t.hyp Cost.breakpoint_handler;
  let vid = Os.active_vcpu_id (Hyp.os t.hyp) in
  if addr = t.ctx_switch_addr then begin
    let pid, comm = Hyp.current_task t.hyp in
    if Obs.armed t.obs then
      Obs.emit t.obs (Event.Breakpoint { vid; addr; pid; comm });
    (* hysteresis: a degraded comm whose cooldown elapsed re-narrows
       here, at a context switch — the only moment a rebind is safe *)
    (match t.governor with
    | Some g
      when Governor.renarrow_due g ~comm
             ~cycle:(Os.cycles (Hyp.os t.hyp)) -> (
        Governor.note_renarrowed g ~comm;
        match Hashtbl.find_opt t.saved_bindings comm with
        | Some narrow when find_view t narrow <> None ->
            Hashtbl.remove t.saved_bindings comm;
            bind t ~comm ~index:narrow;
            Metrics.incr t.renarrowed_c;
            if Obs.armed t.obs then
              Obs.emit t.obs (Event.Renarrowed { vid; comm; to_index = narrow })
        | _ ->
            (* the narrow view is gone; stay on full but stop tracking *)
            Hashtbl.remove t.saved_bindings comm)
    | _ -> ());
    let index = selector t ~comm in
    if index = full_view_index then begin
      t.pending.(vid) <- None;
      sync_resume_breakpoint t;
      switch_kernel_view t ~vid index
    end
    else if t.opts.switch_at_resume && not (vmi_in_kernel t pid) then begin
      t.pending.(vid) <- Some index;
      sync_resume_breakpoint t;
      Metrics.incr t.deferred;
      emit_switch t ~vid ~from_index:t.active.(vid) ~to_index:index
        Event.Deferred
    end
    else begin
      (* immediate switch: either the optimization is off, or the process
         resumes mid-kernel (cross-view case) *)
      t.pending.(vid) <- None;
      sync_resume_breakpoint t;
      switch_kernel_view t ~vid index
    end
  end
  else if addr = t.resume_addr then begin
    if Obs.armed t.obs then begin
      let pid, comm = Hyp.current_task t.hyp in
      Obs.emit t.obs (Event.Breakpoint { vid; addr; pid; comm })
    end;
    match t.pending.(vid) with
    | Some index ->
        t.pending.(vid) <- None;
        sync_resume_breakpoint t;
        switch_kernel_view t ~vid index
    | None -> ()
  end

(* ---------------- kernel code recovery (Algorithm 1, lines 1-17) ----- *)

let code_region t addr =
  let image = Os.image (Hyp.os t.hyp) in
  if addr >= Image.text_base image && addr < Image.text_end image then
    Some (Image.text_base image, Image.text_end image)
  else if Layout.is_module_address addr then
    List.find_map
      (fun (_, base, size) ->
        if base <= addr && addr < base + size then Some (base, base + size) else None)
      (Hyp.module_list t.hyp)
  else None

(* Fetch the whole containing function from the original kernel pages and
   fill it into the view.  Returns (start, stop) on success. *)
let fetch_fill_code t view addr =
  match code_region t addr with
  | None -> None
  | Some (lo, hi) -> (
      let read = Hyp.read_original_code t.hyp in
      match Scan.function_bounds ~read ~lo ~hi addr with
      | None -> None
      | Some (start, stop) ->
          for gva = start to stop - 1 do
            match read gva with
            | Some b -> View.write_code view ~gva b
            | None -> ()
          done;
          Hyp.charge t.hyp ((stop - start) / 16 * Cost.code_copy_per_16_bytes);
          Metrics.add t.recovered_bytes (stop - start);
          Metrics.add
            (Metrics.family_counter t.recovered_bytes_f (current_comm t))
            (stop - start);
          Metrics.observe t.recovery_bytes_h (stop - start);
          Some (start, stop))

(* The paper "inspect[s] the current call stack to determine whether the
   current execution is in interrupt context": true when any frame lies in
   the interrupt entry path. *)
let is_interrupt_frame t frames =
  List.exists
    (fun f ->
      match Fc_kernel.Symbols.find (Hyp.symbols t.hyp) f with
      | Some (name, _) -> String.equal name "irq_entry"
      | None -> false)
    frames

let handle_invalid_opcode t (regs : Cpu.regs) =
  let vid = Os.active_vcpu_id (Hyp.os t.hyp) in
  if t.active.(vid) = full_view_index then
    governed_unhandled t ~vid ~comm:(current_comm t)
      (Printf.sprintf "invalid opcode at 0x%x under the full kernel view" regs.Cpu.eip)
  else
    match find_view t t.active.(vid) with
    | None ->
        governed_unhandled t ~vid ~comm:(current_comm t)
          "active view disappeared"
    | Some view ->
        let sid = span_enter t Fc_obs.Span.Recovery in
        let result = (
        Hyp.charge t.hyp Cost.invalid_opcode_handler;
        (* symbols may have changed (modules hidden/loaded) since attach *)
        Hyp.refresh_symbols t.hyp;
        let pid, comm = Hyp.current_task t.hyp in
        if Obs.armed t.obs then
          Obs.emit t.obs
            (Event.Ud2_trap { vid; eip = regs.Cpu.eip; pid; comm });
        let walk =
          let max_depth =
            match t.governor with
            | Some g -> (Governor.policy g).Governor.max_backtrace_depth
            | None -> 64
          in
          Hyp.stack_walk t.hyp ~eip:regs.Cpu.eip ~ebp:regs.Cpu.ebp
            ~esp:regs.Cpu.esp ~max_depth ()
        in
        let frames = walk.Hyp.frames in
        (* a malformed chain is a degradable event, not a crash: the walk
           already stopped at the break, so only the trustworthy prefix
           is used below *)
        (match walk.Hyp.broken with
        | None -> ()
        | Some why ->
            Metrics.incr t.broken_walks;
            governor_note_event t ~vid ~comm ~reason:why);
        (* capture what the view presented at each frame before recovery
           rewrites it (the hex dumps of Fig. 3) *)
        let frame_bytes =
          List.map
            (fun a ->
              List.filter_map
                (fun i -> View.read_code view ~gva:(a + i))
                [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ])
            frames
        in
        (* Instant recovery: any caller whose return target reads back as
           0x0b 0x0f in this view would be misdecoded instead of trapping;
           recover it now (Fig. 3). *)
        let instant =
          if not t.opts.instant_recovery then []
          else
            List.filter_map
              (fun ret ->
                match (View.read_code view ~gva:ret, View.read_code view ~gva:(ret + 1)) with
                | Some 0x0b, Some 0x0f -> (
                    match fetch_fill_code t view ret with
                    | Some (start, stop) ->
                        let symbol = Hyp.render_addr t.hyp start in
                        if Obs.armed t.obs then
                          Obs.emit t.obs
                            (Event.Recovery
                               { kind = Event.Instant; start; stop; symbol });
                        Some (start, stop, symbol)
                    | None -> None)
                | _ -> None)
              (match frames with _ :: rest -> rest | [] -> [])
        in
        match fetch_fill_code t view regs.Cpu.eip with
        | None ->
            governed_unhandled t ~vid ~comm
              (Printf.sprintf "cannot locate kernel code containing 0x%x" regs.Cpu.eip)
        | Some (start, stop) ->
            Metrics.incr t.recoveries;
            Metrics.incr (Metrics.family_counter t.recoveries_f (current_comm t));
            if Obs.armed t.obs then
              Obs.emit t.obs
                (Event.Recovery
                   {
                     kind = Event.Lazy;
                     start;
                     stop;
                     symbol = Hyp.render_addr t.hyp start;
                   });
            let rendered = List.map (fun a -> Hyp.render_addr t.hyp a) frames in
            let unknown_frames =
              List.exists
                (fun s ->
                  let n = String.length s in
                  n >= 9 && String.sub s (n - 9) 9 = "<UNKNOWN>")
                rendered
            in
            Recovery_log.add t.log
              {
                Recovery_log.cycle = Os.cycles (Hyp.os t.hyp);
                pid;
                comm;
                view_app = View.app view;
                fault_addr = regs.Cpu.eip;
                recovered = [ (start, stop, Hyp.render_addr t.hyp start) ];
                instant;
                backtrace =
                  (let rec zip3 a b c =
                     match (a, b, c) with
                     | x :: xs, y :: ys, z :: zs ->
                         { Recovery_log.addr = x; rendered = y; view_bytes = z }
                         :: zip3 xs ys zs
                     | _ -> []
                   in
                   zip3 frames rendered frame_bytes);
                interrupt_context =
                  Os.in_interrupt (Hyp.os t.hyp) || is_interrupt_frame t frames;
                unknown_frames;
              };
            (* throttle: while a comm is hot, damp the storm by loading
               the functions of its whole caller chain eagerly, not just
               misdecodable return targets *)
            (match t.governor with
            | Some g when Governor.state g ~comm = Governor.Throttled ->
                List.iter
                  (fun a ->
                    if not (View.covers view ~gva:a) then
                      ignore (fetch_fill_code t view a))
                  (match frames with _ :: rest -> rest | [] -> [])
            | _ -> ());
            governor_note_event t ~vid ~comm ~reason:"recovery";
            `Handled)
        in
        span_exit t sid;
        result

(* ---------------- lifecycle ---------------- *)

(* The kernel-code EPT directory set, derived from the (deterministic)
   image layout — shared by [enable] and the snapshot [restore]. *)
let compute_all_dirs image =
  let dir_of gva = Ept.dir_of_page (Layout.page_of (Layout.gva_to_gpa gva)) in
  let acc = ref [] in
  let add d = if not (List.mem d !acc) then acc := d :: !acc in
  let rec sweep gva limit =
    if gva < limit then begin
      add (dir_of gva);
      sweep (gva + (Ept.dir_span_pages * Layout.page_size)) limit
    end
  in
  sweep (Image.text_base image) (Image.text_end image);
  add (dir_of (Image.text_end image - 1));
  sweep Layout.module_area_base Layout.module_area_limit;
  add (dir_of (Layout.module_area_limit - 1));
  List.rev !acc

let enable ?(opts = default_opts) ?governor hyp =
  let os = Hyp.os hyp in
  let image = Os.image os in
  let ctx_switch_addr = Image.addr_of_exn image "__switch_to" in
  let resume_addr = Image.addr_of_exn image "resume_userspace" in
  let all_dirs = compute_all_dirs image in
  let nvcpus = Os.vcpu_count (Hyp.os hyp) in
  let obs = Hyp.obs hyp in
  let m = Obs.metrics obs in
  let t =
    {
      hyp;
      obs;
      opts;
      views = [];
      bindings = [];
      next_index = 1;
      active = Array.make nvcpus full_view_index;
      pending = Array.make nvcpus None;
      ctx_switch_addr;
      resume_addr;
      all_dirs;
      log = Recovery_log.create ();
      switches = Metrics.counter m ~subsystem:"fc" "view_switches";
      switch_skips = Metrics.counter m ~subsystem:"fc" "switches_skipped";
      deferred = Metrics.counter m ~subsystem:"fc" "switches_deferred";
      recoveries = Metrics.counter m ~subsystem:"fc" "recoveries";
      recovered_bytes = Metrics.counter m ~subsystem:"fc" "recovered_bytes";
      recovery_bytes_h = Metrics.histogram m ~subsystem:"fc" "recovery_bytes";
      view_build_cycles = Metrics.histogram m ~subsystem:"fc" "view_build_cycles";
      switches_f = Metrics.counter_family m ~subsystem:"fc" "view_switches";
      recoveries_f = Metrics.counter_family m ~subsystem:"fc" "recoveries";
      recovered_bytes_f = Metrics.counter_family m ~subsystem:"fc" "recovered_bytes";
      retired_cow_breaks = 0;
      governor = Option.map Governor.create governor;
      saved_bindings = Hashtbl.create 8;
      storms = Metrics.counter m ~subsystem:"fc" "storms";
      degraded_c = Metrics.counter m ~subsystem:"fc" "degradations";
      renarrowed_c = Metrics.counter m ~subsystem:"fc" "renarrows";
      quarantined_c = Metrics.counter m ~subsystem:"fc" "quarantines";
      broken_walks = Metrics.counter m ~subsystem:"fc" "broken_backtraces";
      tolerated = Metrics.counter m ~subsystem:"fc" "tolerated_faults";
      degraded_f = Metrics.counter_family m ~subsystem:"fc" "degradations";
      enabled = true;
    }
  in
  (* a fresh enablement owns these instruments, even on a guest that ran
     an earlier FACE-CHANGE instance *)
  List.iter Metrics.reset
    [
      t.switches; t.switch_skips; t.deferred; t.recoveries; t.recovered_bytes;
      t.storms; t.degraded_c; t.renarrowed_c; t.quarantined_c; t.broken_walks;
      t.tolerated;
    ];
  Metrics.reset_histogram t.recovery_bytes_h;
  Metrics.reset_histogram t.view_build_cycles;
  List.iter Metrics.reset_family
    [
      t.switches_f;
      t.recoveries_f;
      t.recovered_bytes_f;
      t.degraded_f;
      Metrics.counter_family m ~subsystem:"view" "cow_breaks";
    ];
  (* structural state exported as read-through gauges: Stats.capture is a
     projection of these plus the counters above *)
  Metrics.gauge m ~subsystem:"fc" "views_loaded" (fun () -> List.length t.views);
  Metrics.gauge m ~subsystem:"fc" "view_pages" (fun () ->
      List.fold_left (fun n v -> n + View.private_page_count v) 0 t.views);
  Metrics.gauge m ~subsystem:"fc" "shared_frames" (fun () -> shared_frames t);
  Metrics.gauge m ~subsystem:"fc" "cow_breaks" (fun () -> cow_breaks t);
  Metrics.gauge m ~subsystem:"fc" "recovery_log_dropped" (fun () ->
      Recovery_log.dropped t.log);
  Hyp.on_breakpoint hyp (fun _hyp regs addr -> handle_kernel_view_trap t regs addr);
  Hyp.on_invalid_opcode hyp (fun _hyp regs -> handle_invalid_opcode t regs);
  Hyp.set_breakpoint hyp ctx_switch_addr;
  t

let load_view t config =
  let index = t.next_index in
  t.next_index <- index + 1;
  let charged_before = Hyp.cycles_charged t.hyp in
  let sid = span_enter t Fc_obs.Span.View_build in
  let v =
    View.build ~hyp:t.hyp ~whole_function_load:t.opts.whole_function_load
      ~share_frames:t.opts.share_frames ~index config
  in
  span_exit t sid;
  Metrics.observe t.view_build_cycles (Hyp.cycles_charged t.hyp - charged_before);
  t.views <- t.views @ [ v ];
  bind t ~comm:config.Fc_profiler.View_config.app ~index;
  if Obs.armed t.obs then
    Obs.emit t.obs
      (Event.View_load
         {
           index;
           app = View.app v;
           pages = View.private_page_count v;
           loaded_bytes = View.loaded_bytes v;
         });
  index

let unload_view t index =
  match find_view t index with
  | None -> ()
  | Some v ->
      Array.iteri
        (fun vid active ->
          if active = index then switch_kernel_view t ~vid full_view_index)
        t.active;
      t.bindings <- List.filter (fun (_, i) -> i <> index) t.bindings;
      Hashtbl.iter
        (fun comm narrow ->
          if narrow = index then Hashtbl.remove t.saved_bindings comm)
        (Hashtbl.copy t.saved_bindings);
      t.views <- List.filter (fun v' -> View.index v' <> index) t.views;
      Array.iteri
        (fun vid p -> if p = Some index then t.pending.(vid) <- None)
        t.pending;
      sync_resume_breakpoint t;
      t.retired_cow_breaks <- t.retired_cow_breaks + View.cow_breaks v;
      if Obs.armed t.obs then
        Obs.emit t.obs
          (Event.View_unload
             { index; app = View.app v; cow_breaks = View.cow_breaks v });
      View.destroy v;
      (* retire only the dead view's tag — survivors (and the full view)
         keep every cached translation; the pre-tag scheme full-flushed
         here via the switch-away set_dirs *)
      Os.retire_view_translations (Hyp.os t.hyp) ~view:index

let disable t =
  if t.enabled then begin
    t.enabled <- false;
    Array.iteri (fun vid _ -> switch_kernel_view t ~vid full_view_index) t.active;
    Array.fill t.pending 0 (Array.length t.pending) None;
    Hyp.clear_breakpoint t.hyp t.ctx_switch_addr;
    Hyp.clear_breakpoint t.hyp t.resume_addr;
    List.iter
      (fun v ->
        t.retired_cow_breaks <- t.retired_cow_breaks + View.cow_breaks v;
        let index = View.index v in
        View.destroy v;
        Os.retire_view_translations (Hyp.os t.hyp) ~view:index)
      t.views;
    t.views <- [];
    t.bindings <- [];
    Hashtbl.reset t.saved_bindings
  end

(* ---------------- snapshot: freeze / restore ---------------- *)

type frozen = {
  zf_opts : opts;
  zf_views : View.frozen list; (* load order *)
  zf_bindings : (string * int) list; (* assoc order kept verbatim *)
  zf_next_index : int;
  zf_active : int list; (* per vCPU *)
  zf_pending : int option list; (* per vCPU *)
  zf_retired_cow_breaks : int;
  zf_governor : Governor.frozen option;
  zf_saved_bindings : (string * int) list; (* sorted *)
  zf_log : string; (* Recovery_log.to_string, retained window *)
  zf_log_dropped : int;
  zf_log_cap : int;
  zf_enabled : bool;
}

let freeze t ~table_id =
  {
    zf_opts = t.opts;
    zf_views = List.map (View.freeze ~table_id) t.views;
    zf_bindings = t.bindings;
    zf_next_index = t.next_index;
    zf_active = Array.to_list t.active;
    zf_pending = Array.to_list t.pending;
    zf_retired_cow_breaks = t.retired_cow_breaks;
    zf_governor = Option.map Governor.freeze t.governor;
    zf_saved_bindings =
      List.sort compare
        (Hashtbl.fold (fun c i acc -> (c, i) :: acc) t.saved_bindings []);
    zf_log = Recovery_log.to_string t.log;
    zf_log_dropped = Recovery_log.dropped t.log;
    zf_log_cap = Recovery_log.cap t.log;
    zf_enabled = t.enabled;
  }

let restore ~hyp ~table_of (z : frozen) =
  let os = Hyp.os hyp in
  let image = Os.image os in
  let log =
    match Recovery_log.of_string ~cap:z.zf_log_cap z.zf_log with
    | Ok l ->
        Recovery_log.restore_dropped l z.zf_log_dropped;
        l
    | Error e -> invalid_arg ("Facechange.restore: bad recovery log: " ^ e)
  in
  let obs = Hyp.obs hyp in
  let m = Obs.metrics obs in
  let t =
    {
      hyp;
      obs;
      opts = z.zf_opts;
      views = List.map (fun zv -> View.restore ~hyp ~table_of zv) z.zf_views;
      bindings = z.zf_bindings;
      next_index = z.zf_next_index;
      active = Array.of_list z.zf_active;
      pending = Array.of_list z.zf_pending;
      ctx_switch_addr = Image.addr_of_exn image "__switch_to";
      resume_addr = Image.addr_of_exn image "resume_userspace";
      all_dirs = compute_all_dirs image;
      log;
      switches = Metrics.counter m ~subsystem:"fc" "view_switches";
      switch_skips = Metrics.counter m ~subsystem:"fc" "switches_skipped";
      deferred = Metrics.counter m ~subsystem:"fc" "switches_deferred";
      recoveries = Metrics.counter m ~subsystem:"fc" "recoveries";
      recovered_bytes = Metrics.counter m ~subsystem:"fc" "recovered_bytes";
      recovery_bytes_h = Metrics.histogram m ~subsystem:"fc" "recovery_bytes";
      view_build_cycles = Metrics.histogram m ~subsystem:"fc" "view_build_cycles";
      switches_f = Metrics.counter_family m ~subsystem:"fc" "view_switches";
      recoveries_f = Metrics.counter_family m ~subsystem:"fc" "recoveries";
      recovered_bytes_f = Metrics.counter_family m ~subsystem:"fc" "recovered_bytes";
      retired_cow_breaks = z.zf_retired_cow_breaks;
      governor = Option.map Governor.thaw z.zf_governor;
      saved_bindings =
        (let h = Hashtbl.create 8 in
         List.iter (fun (c, i) -> Hashtbl.replace h c i) z.zf_saved_bindings;
         h);
      storms = Metrics.counter m ~subsystem:"fc" "storms";
      degraded_c = Metrics.counter m ~subsystem:"fc" "degradations";
      renarrowed_c = Metrics.counter m ~subsystem:"fc" "renarrows";
      quarantined_c = Metrics.counter m ~subsystem:"fc" "quarantines";
      broken_walks = Metrics.counter m ~subsystem:"fc" "broken_backtraces";
      tolerated = Metrics.counter m ~subsystem:"fc" "tolerated_faults";
      degraded_f = Metrics.counter_family m ~subsystem:"fc" "degradations";
      enabled = z.zf_enabled;
    }
  in
  (* no counter resets here (the codec's metrics section is applied after
     every layer is restored); gauges re-register over the new instance *)
  Metrics.gauge m ~subsystem:"fc" "views_loaded" (fun () -> List.length t.views);
  Metrics.gauge m ~subsystem:"fc" "view_pages" (fun () ->
      List.fold_left (fun n v -> n + View.private_page_count v) 0 t.views);
  Metrics.gauge m ~subsystem:"fc" "shared_frames" (fun () -> shared_frames t);
  Metrics.gauge m ~subsystem:"fc" "cow_breaks" (fun () -> cow_breaks t);
  Metrics.gauge m ~subsystem:"fc" "recovery_log_dropped" (fun () ->
      Recovery_log.dropped t.log);
  Hyp.on_breakpoint hyp (fun _hyp regs addr -> handle_kernel_view_trap t regs addr);
  Hyp.on_invalid_opcode hyp (fun _hyp regs -> handle_invalid_opcode t regs);
  (* breakpoints are NOT re-set: the __switch_to trap (and the resume
     trap, when a deferred switch was pending) live in the restored trap
     set already — setting them again would bump the trap generation a
     second time *)
  t
