(** The FACE-CHANGE runtime (Algorithm 1).

    Enable it on an attached hypervisor to get dynamic per-application
    kernel view switching:

    - a breakpoint on the guest's context-switch function ([__switch_to])
      fires on every switch; VMI reads the incoming process' identity and
      the view selector picks its kernel view;
    - switching to the full kernel view happens immediately; switching to
      a customized view is deferred to the [resume_userspace] breakpoint
      (the paper's missed-interrupt optimization) {e unless} the incoming
      process is resuming mid-kernel, in which case the view applies at
      once — which is precisely the situation that exercises the paper's
      cross-view recovery (Fig. 3);
    - a process whose previous and next views coincide costs nothing (the
      same-view optimization);
    - invalid-opcode VM exits trigger kernel code recovery: backtrace,
      provenance logging, whole-function fetch from the original kernel
      pages, and instant recovery of any caller whose return address
      lands on a misdecoding [0x0b 0x0f] boundary;
    - optionally, a {!Governor} watches the recovery rate per comm and
      degrades a storming app to the full kernel view (with cooldown and
      re-narrowing) instead of letting recovery churn — or the guest
      die — unbounded. *)

type opts = {
  switch_at_resume : bool;
      (** defer custom-view switches to resume-userspace (default true) *)
  same_view_opt : bool;     (** skip EPT updates on same-view switches *)
  whole_function_load : bool;  (** §III-B1 relaxation *)
  instant_recovery : bool;  (** Fig. 3's odd-boundary caller recovery *)
  share_frames : bool;
      (** intern byte-identical view pages in the hypervisor's frame
          cache (default true); behavior-invisible either way *)
}

val default_opts : opts

type t

val enable :
  ?opts:opts -> ?governor:Governor.policy -> Fc_hypervisor.Hypervisor.t -> t
(** Install the traps and the VM-exit handlers.  The full kernel view is
    active and selected for every process until views are loaded.

    Without [governor] the runtime behaves exactly as the paper
    describes: an unhandled invalid-opcode exit panics the guest and
    recovery storms run unchecked.  With a {!Governor.policy}, recoveries
    and broken backtraces are tracked per comm; a storming comm is
    throttled (caller-chain prefetch), then degraded to the full kernel
    view, re-narrowed after a cooldown, and quarantined if it keeps
    misbehaving — and [`Unhandled] exits become survivable under the
    [`Degrade] policy. *)

val disable : t -> unit
(** Switch back to the full view, clear all traps, and destroy every
    loaded view without interrupting the guest (§III-B4). *)

val hyp : t -> Fc_hypervisor.Hypervisor.t
val log : t -> Recovery_log.t
val opts : t -> opts

(* ---------------- views ---------------- *)

val full_view_index : int
(** 0 — the guest's unmodified kernel mapping. *)

val load_view : t -> Fc_profiler.View_config.t -> int
(** Materialize a view and bind the selector for the configuration's
    application name to it.  Returns the view index. *)

val unload_view : t -> int -> unit
(** Destroy a view; processes bound to it fall back to the full view.  If
    it is active, the full view is installed first. *)

val bind : t -> comm:string -> index:int -> unit
(** Point a process name at a view (e.g. binding every application to a
    single "union" view to emulate system-wide minimization). *)

val unbind : t -> comm:string -> unit
val selector : t -> comm:string -> int
val views : t -> View.t list
val find_view : t -> int -> View.t option
val active_index : ?vid:int -> t -> int
(** The view active on the given vCPU (default 0). *)

(* ---------------- statistics ---------------- *)

val switches : t -> int
(** EPT view installations actually performed. *)

val switch_skips : t -> int
(** Switches avoided by the same-view optimization. *)

val deferred_switches : t -> int
(** Custom-view switches deferred to resume-userspace. *)

val recoveries : t -> int
(** Invalid-opcode recoveries performed. *)

val recovered_bytes : t -> int

val shared_frames : t -> int
(** Across loaded views: pages minus distinct backing frames — the
    allocations frame sharing avoided. *)

val cow_breaks : t -> int
(** Shared frames privatized by copy-on-write across all loaded views
    (including views since unloaded). *)

(* ---------------- governor ---------------- *)

val governor : t -> Governor.t option

val storms : t -> int
(** Recovery storms detected (sliding-window threshold crossings). *)

val degradations : t -> int
(** Fallbacks to the full kernel view (including quarantines). *)

val renarrows : t -> int
(** Degraded comms re-bound to their narrow view after cooldown. *)

val quarantines : t -> int
(** Comms pinned to the full view for good. *)

val broken_backtraces : t -> int
(** rbp walks cut short by a cyclic, out-of-range, unreadable, or
    over-deep chain. *)

val tolerated_faults : t -> int
(** Unhandled invalid-opcode exits swallowed for already-quarantined
    comms. *)

(** {1 Snapshot: freeze / restore} *)

type frozen = {
  zf_opts : opts;
  zf_views : View.frozen list;  (** load order *)
  zf_bindings : (string * int) list;
  zf_next_index : int;
  zf_active : int list;  (** per vCPU *)
  zf_pending : int option list;  (** per vCPU *)
  zf_retired_cow_breaks : int;
  zf_governor : Governor.frozen option;
  zf_saved_bindings : (string * int) list;  (** sorted *)
  zf_log : string;  (** {!Recovery_log.to_string}, retained window *)
  zf_log_dropped : int;
  zf_log_cap : int;
  zf_enabled : bool;
}

val freeze : t -> table_id:(Fc_mem.Ept.table -> int) -> frozen

val restore :
  hyp:Fc_hypervisor.Hypervisor.t ->
  table_of:(int -> Fc_mem.Ept.table) -> frozen -> t
(** Re-enable FACE-CHANGE from a frozen image on a restored hypervisor:
    views, bindings, per-vCPU active/pending switches, the governor and
    the recovery log come back verbatim; the breakpoint and
    invalid-opcode handlers are installed, but no breakpoints are set —
    the guest's restored trap set already holds them. *)
