(** Materialized kernel views (§III-B1).

    A view is a private copy of the guest's kernel code pages — base kernel
    text plus the code pages of every VMI-visible module — where everything
    outside the application's profiled ranges is filled with UD2
    ([0x0f 0x0b]) and, for each profiled basic block, the {e whole
    containing kernel function} is loaded (boundaries found by scanning for
    the prologue signature in the original code, never by consulting a
    function database).

    The view owns EPT page tables for the affected directories; installing
    a view is {!tables}-for-directory pointer assignment, done by
    {!Facechange}.

    Views overlap heavily (Table I), so materialization is content-aware:
    each page's final contents are composed in a buffer (UD2 fill plus
    the covered parts of the load set, located through the
    {!Fc_ranges.Range_list} interval index) and interned through the
    hypervisor's {!Fc_mem.Frame_cache} — byte-identical pages across (or
    within) views share one refcounted physical frame.  The first
    {!write_code} into a shared frame copies it (copy-on-write), so lazy
    and instant code recovery stay strictly per-view.  Sharing is
    behavior-invisible: byte and cycle accounting are identical whether
    it is on or off. *)

type t

val build :
  hyp:Fc_hypervisor.Hypervisor.t ->
  ?whole_function_load:bool ->
  ?share_frames:bool ->
  index:int ->
  Fc_profiler.View_config.t ->
  t
(** Materialize a view from a configuration.  [whole_function_load]
    (default true) is the paper's relaxation; disabling it loads raw
    profiled byte ranges instead (the ablation shows why that is a bad
    idea: more recoveries, and UD2 fill that starts at odd addresses).
    [share_frames] (default true) interns byte-identical pages through
    the hypervisor's frame cache; disabling it allocates every page
    privately, with bit-identical guest-visible behavior. *)

val index : t -> int
val config : t -> Fc_profiler.View_config.t
val app : t -> string

val tables : t -> (int * Fc_mem.Ept.table) list
(** (directory, page table) pairs to install on switch-in. *)

val dirs : t -> int list

val private_page_count : t -> int
(** Pages this view maps over the original kernel (regardless of whether
    their backing frames are shared). *)

val frame_count : t -> int
(** Distinct physical frames backing the view's pages — equal to
    {!private_page_count} without sharing, and (much) smaller with it. *)

val shared_page_count : t -> int
(** Pages currently backed by a frame with more than one reference. *)

val cow_breaks : t -> int
(** Shared frames this view privatized by copy-on-write (first
    {!write_code} into a shared page). *)

val loaded_bytes : t -> int
(** Bytes of real code loaded at build time (after the whole-function
    relaxation). *)

val write_code : t -> gva:int -> int -> unit
(** Patch one byte of the view's copy (code recovery).  Breaks the
    page's frame out of sharing first if needed (copy-on-write). *)

val read_code : t -> gva:int -> int option
(** Read a byte as the vCPU would see it under this view. *)

val covers : t -> gva:int -> bool
(** Is the address inside a page this view privately owns? *)

val destroy : t -> unit
(** Free all private frames (view unload, §III-B4). *)

(** {1 Snapshot: freeze / restore} *)

type frozen = {
  zv_index : int;
  zv_config : string;  (** {!Fc_profiler.View_config.to_string} text *)
  zv_share : bool;
  zv_tables : (int * int) list;  (** dir -> pool table id, list order *)
  zv_page_frames : (int * int) list;  (** gpa_page -> frame, sorted *)
  zv_loaded_bytes : int;
  zv_cow_breaks : int;
  zv_destroyed : bool;
}

val freeze : t -> table_id:(Fc_mem.Ept.table -> int) -> frozen

val restore :
  hyp:Fc_hypervisor.Hypervisor.t ->
  table_of:(int -> Fc_mem.Ept.table) -> frozen -> t
(** Rebuild a view over the restored frame pool.  The view's frame
    references were restored with the pool, so no frames are allocated,
    copied or re-referenced — restore is pure bookkeeping. *)
