type policy = {
  window_cycles : int;
  throttle_after : int;
  storm_after : int;
  cooldown_cycles : int;
  quarantine_after : int;
  max_backtrace_depth : int;
  on_unhandled : [ `Degrade | `Die ];
}

let default_policy =
  {
    window_cycles = 400_000;
    throttle_after = 4;
    storm_after = 8;
    cooldown_cycles = 600_000;
    quarantine_after = 3;
    max_backtrace_depth = 32;
    on_unhandled = `Degrade;
  }

type state = Narrow | Throttled | Degraded | Quarantined

let state_label = function
  | Narrow -> "narrow"
  | Throttled -> "throttled"
  | Degraded -> "degraded"
  | Quarantined -> "quarantined"

type app = {
  mutable st : state;
  recent : int Queue.t; (* cycles of degradable events, oldest first *)
  mutable degradations : int;
  mutable degraded_at : int;
  mutable unhandled : int;
}

type t = { policy : policy; apps : (string, app) Hashtbl.t }

let create policy = { policy; apps = Hashtbl.create 8 }
let policy t = t.policy

let app t comm =
  match Hashtbl.find_opt t.apps comm with
  | Some a -> a
  | None ->
      let a =
        {
          st = Narrow;
          recent = Queue.create ();
          degradations = 0;
          degraded_at = 0;
          unhandled = 0;
        }
      in
      Hashtbl.add t.apps comm a;
      a

let state t ~comm =
  match Hashtbl.find_opt t.apps comm with Some a -> a.st | None -> Narrow

let comms t =
  List.sort compare
    (Hashtbl.fold (fun c a acc -> (c, a.st) :: acc) t.apps [])

let degradations t ~comm =
  match Hashtbl.find_opt t.apps comm with Some a -> a.degradations | None -> 0

let note_event t ~comm ~cycle =
  let a = app t comm in
  Queue.push cycle a.recent;
  let expired c = c + t.policy.window_cycles < cycle in
  while
    match Queue.peek_opt a.recent with Some c -> expired c | None -> false
  do
    ignore (Queue.pop a.recent)
  done;
  let n = Queue.length a.recent in
  match a.st with
  | Degraded | Quarantined -> `Steady
  | Narrow when n >= t.policy.storm_after -> `Storm n
  | Narrow when n >= t.policy.throttle_after ->
      a.st <- Throttled;
      `Throttle
  | Throttled when n >= t.policy.storm_after -> `Storm n
  | Narrow | Throttled -> `Steady

let note_degraded t ~comm ~cycle =
  let a = app t comm in
  Queue.clear a.recent;
  a.degradations <- a.degradations + 1;
  a.degraded_at <- cycle;
  if a.degradations >= t.policy.quarantine_after then begin
    a.st <- Quarantined;
    `Quarantine
  end
  else begin
    a.st <- Degraded;
    `Degraded
  end

let note_unhandled t ~comm =
  match t.policy.on_unhandled with
  | `Die -> `Die
  | `Degrade -> (
      let a = app t comm in
      a.unhandled <- a.unhandled + 1;
      match a.st with
      | Quarantined -> `Tolerate
      | _ when a.unhandled >= t.policy.quarantine_after -> `Quarantine
      | _ -> `Degrade)

let quarantine t ~comm ~cycle =
  let a = app t comm in
  Queue.clear a.recent;
  a.degradations <- a.degradations + 1;
  a.degraded_at <- cycle;
  a.st <- Quarantined

let renarrow_due t ~comm ~cycle =
  match Hashtbl.find_opt t.apps comm with
  | Some a ->
      a.st = Degraded && cycle - a.degraded_at >= t.policy.cooldown_cycles
  | None -> false

let note_renarrowed t ~comm =
  let a = app t comm in
  a.st <- Narrow;
  a.unhandled <- 0;
  Queue.clear a.recent

(* ---------------- snapshot state ---------------- *)

type frozen_app = {
  za_st : state;
  za_recent : int list; (* event-window cycles, oldest first *)
  za_degradations : int;
  za_degraded_at : int;
  za_unhandled : int;
}

type frozen = { zg_policy : policy; zg_apps : (string * frozen_app) list }

let freeze t =
  {
    zg_policy = t.policy;
    zg_apps =
      List.sort compare
        (Hashtbl.fold
           (fun comm a acc ->
             ( comm,
               {
                 za_st = a.st;
                 za_recent = List.of_seq (Queue.to_seq a.recent);
                 za_degradations = a.degradations;
                 za_degraded_at = a.degraded_at;
                 za_unhandled = a.unhandled;
               } )
             :: acc)
           t.apps []);
  }

let thaw z =
  let t = create z.zg_policy in
  List.iter
    (fun (comm, za) ->
      let a = app t comm in
      a.st <- za.za_st;
      List.iter (fun c -> Queue.push c a.recent) za.za_recent;
      a.degradations <- za.za_degradations;
      a.degraded_at <- za.za_degraded_at;
      a.unhandled <- za.za_unhandled)
    z.zg_apps;
  t
