type frame = { addr : int; rendered : string; view_bytes : int list }

type entry = {
  cycle : int;
  pid : int;
  comm : string;
  view_app : string;
  fault_addr : int;
  recovered : (int * int * string) list;
  instant : (int * int * string) list;
  backtrace : frame list;
  interrupt_context : bool;
  unknown_frames : bool;
}

(* Retention is bounded: a chaos/soak run appending recoveries forever
   must not grow the log without bound.  [rev_entries] holds at most
   [cap] entries (newest first); older ones are dropped in batches —
   one O(cap) trim per cap/4 adds, amortized O(1) — and only counted. *)
type t = {
  cap : int;
  mutable rev_entries : entry list;
  mutable retained : int;
  mutable dropped : int;
}

let default_cap = 4096

let create ?(cap = default_cap) () =
  { cap = max 1 cap; rev_entries = []; retained = 0; dropped = 0 }

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let add t e =
  t.rev_entries <- e :: t.rev_entries;
  t.retained <- t.retained + 1;
  if t.retained > t.cap then begin
    let keep = t.cap - (t.cap / 4) in
    t.rev_entries <- take keep t.rev_entries;
    t.dropped <- t.dropped + (t.retained - keep);
    t.retained <- keep
  end

let entries t = List.rev t.rev_entries
let count t = t.retained + t.dropped
let cap t = t.cap
let dropped t = t.dropped
let restore_dropped t n = t.dropped <- max 0 n

let clear t =
  t.rev_entries <- [];
  t.retained <- 0;
  t.dropped <- 0

let recovered_symbols t =
  List.concat_map (fun e -> List.map (fun (_, _, s) -> s) e.recovered) (entries t)

let bare_name rendered =
  match (String.index_opt rendered '<', String.index_opt rendered '+') with
  | Some i, Some j when j > i -> String.sub rendered (i + 1) (j - i - 1)
  | _ -> rendered

let recovered_names t =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun s ->
      let n = bare_name s in
      if Hashtbl.mem seen n then None
      else begin
        Hashtbl.add seen n ();
        Some n
      end)
    (recovered_symbols t)

let any_unknown t = List.exists (fun e -> e.unknown_frames) t.rev_entries

(* The backtrace's head is the faulting address itself; the callers are
   everything after it. *)
let callers e = match e.backtrace with _ :: rest -> rest | [] -> []

let pp_entry ppf e =
  Format.fprintf ppf "@[<v>Recover ";
  (match e.recovered with
  | (_, _, s) :: _ -> Format.fprintf ppf "%s" s
  | [] -> Format.fprintf ppf "0x%x" e.fault_addr);
  Format.fprintf ppf " for kernel[%s] (pid %d %s%s)@," e.view_app e.pid e.comm
    (if e.interrupt_context then ", interrupt context" else "");
  List.iter (fun f -> Format.fprintf ppf "|-- %s@," f.rendered) (callers e);
  List.iter
    (fun (_, _, s) -> Format.fprintf ppf "|== instant recovery: %s@," s)
    e.instant;
  Format.fprintf ppf "@]"

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)

(* ---------------- JSON ---------------- *)

module Jsonx = Fc_obs.Jsonx

let range_to_json (lo, hi, rendered) =
  Jsonx.Obj
    [
      ("start", Jsonx.Int lo);
      ("stop", Jsonx.Int hi);
      ("bytes", Jsonx.Int (hi - lo));
      ("symbol", Jsonx.String rendered);
    ]

let frame_to_json f =
  Jsonx.Obj
    [
      ("addr", Jsonx.Int f.addr);
      ("rendered", Jsonx.String f.rendered);
      ("view_bytes", Jsonx.List (List.map (fun b -> Jsonx.Int b) f.view_bytes));
    ]

let entry_to_json e =
  Jsonx.Obj
    [
      ("cycle", Jsonx.Int e.cycle);
      ("pid", Jsonx.Int e.pid);
      ("comm", Jsonx.String e.comm);
      ("view_app", Jsonx.String e.view_app);
      ("fault_addr", Jsonx.Int e.fault_addr);
      ("recovered", Jsonx.List (List.map range_to_json e.recovered));
      ("instant", Jsonx.List (List.map range_to_json e.instant));
      ("backtrace", Jsonx.List (List.map frame_to_json e.backtrace));
      ("interrupt_context", Jsonx.Bool e.interrupt_context);
      ("unknown_frames", Jsonx.Bool e.unknown_frames);
    ]

let to_json t =
  Jsonx.Obj
    [
      ("count", Jsonx.Int (count t));
      ("dropped", Jsonx.Int t.dropped);
      ("entries", Jsonx.List (List.map entry_to_json (entries t)));
    ]

(* ---------------- persistence ---------------- *)

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# facechange recovery log\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "entry %d %d %s %s 0x%x %d %d\n" e.cycle e.pid e.comm
           e.view_app e.fault_addr
           (if e.interrupt_context then 1 else 0)
           (if e.unknown_frames then 1 else 0));
      List.iter
        (fun (lo, hi, s) ->
          Buffer.add_string buf (Printf.sprintf "rec 0x%x 0x%x %s\n" lo hi s))
        e.recovered;
      List.iter
        (fun (lo, hi, s) ->
          Buffer.add_string buf (Printf.sprintf "ins 0x%x 0x%x %s\n" lo hi s))
        e.instant;
      List.iter
        (fun f ->
          Buffer.add_string buf
            (Printf.sprintf "bt 0x%x %s %s\n" f.addr
               (String.concat "," (List.map string_of_int f.view_bytes))
               f.rendered))
        e.backtrace)
    (entries t);
  Buffer.contents buf

(* Split off the first [n] space-separated tokens; the remainder (which may
   itself contain spaces, e.g. a rendered symbol) is returned verbatim. *)
let split_tokens n line =
  let rec go acc start remaining =
    if remaining = 0 then Some (List.rev acc, String.sub line start (String.length line - start))
    else
      match String.index_from_opt line start ' ' with
      | None -> None
      | Some i -> go (String.sub line start (i - start) :: acc) (i + 1) (remaining - 1)
  in
  go [] 0 n

let of_string ?cap text =
  let exception Bad of string in
  let int_of s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> raise (Bad ("bad integer " ^ s))
  in
  try
    let t = create ?cap () in
    let current = ref None in
    let flush () =
      match !current with
      | Some e ->
          add t
            { e with
              recovered = List.rev e.recovered;
              instant = List.rev e.instant;
              backtrace = List.rev e.backtrace;
            };
          current := None
      | None -> ()
    in
    List.iter
      (fun line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then ()
        else
          match split_tokens 1 line with
          | None -> raise (Bad "unparseable line")
          | Some ([ "entry" ], rest) -> (
              flush ();
              match String.split_on_char ' ' rest with
              | [ cycle; pid; comm; view_app; fault; irq; unk ] ->
                  current :=
                    Some
                      {
                        cycle = int_of cycle;
                        pid = int_of pid;
                        comm;
                        view_app;
                        fault_addr = int_of fault;
                        recovered = [];
                        instant = [];
                        backtrace = [];
                        interrupt_context = irq = "1";
                        unknown_frames = unk = "1";
                      }
              | _ -> raise (Bad "bad entry line"))
          | Some ([ kind ], _) when kind = "rec" || kind = "ins" -> (
              match (split_tokens 3 line, !current) with
              | Some ([ _; lo; hi ], rendered), Some e ->
                  let item = (int_of lo, int_of hi, rendered) in
                  current :=
                    Some
                      (if kind = "rec" then { e with recovered = item :: e.recovered }
                       else { e with instant = item :: e.instant })
              | _, None -> raise (Bad "rec/ins outside entry")
              | _ -> raise (Bad "bad rec/ins line"))
          | Some ([ "bt" ], _) -> (
              match (split_tokens 3 line, !current) with
              | Some ([ _; addr; bytes ], rendered), Some e ->
                  let view_bytes =
                    if bytes = "" then []
                    else List.map int_of (String.split_on_char ',' bytes)
                  in
                  let f = { addr = int_of addr; rendered; view_bytes } in
                  current := Some { e with backtrace = f :: e.backtrace }
              | _, None -> raise (Bad "bt outside entry")
              | _ -> raise (Bad "bad bt line"))
          | Some _ -> raise (Bad ("unknown record: " ^ line)))
      (String.split_on_char '\n' text);
    flush ();
    Ok t
  with Bad msg -> Error msg

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e
