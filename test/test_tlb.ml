(* The software TLBs (lib/mem/tlb.ml + the Os fast paths): coherence
   under view switches, COW breaks and in-place recovery writes, dTLB
   visibility of new mappings, and the load-bearing property that the
   fast path is behavior-invisible — a TLB'd guest and a TLB-disabled
   guest retire the same instructions, charge the same cycles, emit the
   same traces and capture identical stats, faults and all. *)

module Os = Fc_machine.Os
module Process = Fc_machine.Process
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Governor = Fc_core.Governor
module View = Fc_core.View
module Stats = Fc_core.Stats
module Layout = Fc_kernel.Layout
module Image = Fc_kernel.Image
module Ept = Fc_mem.Ept
module App = Fc_apps.App
module Profiles = Fc_benchkit.Profiles
module Fault = Fc_faults.Fault
module Frand = Fc_faults.Frand
module Injector = Fc_faults.Injector
module J = Fc_obs.Jsonx

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let profiles () = Lazy.force Test_env.profiles

(* ---------------- the Tlb module itself ---------------- *)

module Tlb = Fc_mem.Tlb

let test_tlb_direct_mapped () =
  let t = Tlb.create ~bits:2 ~payload:0 () in
  check_int "2^bits entries" 4 (Tlb.size t);
  let e = Tlb.slot t 5 in
  Tlb.fill e ~tag:5 ~stamp:1 ~frame:7 ~version:3 ~bytes:Bytes.empty ~payload:9;
  check_int "tagged" 5 (Tlb.slot t 5).Tlb.tag;
  (* page 9 maps to the same slot (9 land 3 = 5 land 3): a conflicting
     fill evicts *)
  let e9 = Tlb.slot t 9 in
  check_bool "conflict slot" true (e == e9);
  check_bool "miss reads as wrong tag" true (e9.Tlb.tag <> 9);
  Tlb.invalidate_all t;
  check_int "invalidated" Tlb.no_tag (Tlb.slot t 5).Tlb.tag

(* ---------------- fetch-path coherence ---------------- *)

let image = lazy (Image.build_exn ())

(* A text address the view remaps to different bytes than the original
   kernel: warming the iTLB there and then changing the translation is
   exactly the staleness the epoch/version protocol must catch. *)
let divergent_gva os view =
  let img = Lazy.force image in
  let base = Image.text_base img in
  let rec go a =
    if a >= base + 0x40000 then Alcotest.fail "no divergent byte found"
    else if
      View.covers view ~gva:a && View.read_code view ~gva:a <> Os.fetch_code os a
    then a
    else go (a + 1)
  in
  go base

(* Mirror the facechange switch-in.  Tagged: quiet directory installs
   plus a tag swap — nothing is flushed, and the active tag names the
   view so a later COW splice (which bumps the owning view's generation)
   invalidates exactly this vCPU's warm entries.  Untagged: the legacy
   bumping set_dir path. *)
let install_view os view =
  let ept = Os.ept os in
  if Os.tagged_on os then begin
    List.iter
      (fun (dir, tbl) -> Ept.install_dir ept ~dir (Some tbl))
      (View.tables view);
    Ept.set_view ept ~view:(View.index view)
  end
  else
    List.iter
      (fun (dir, tbl) -> Ept.set_dir ept ~dir (Some tbl))
      (View.tables view)

let test_view_switch_invalidates_itlb () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let cfg = Fc_benchkit.Profiles.config_of (profiles ()) "top" in
  let v = View.build ~hyp ~index:1 cfg in
  let g = divergent_gva os v in
  let before = Os.fetch_code os g in
  (* warm the iTLB on the original translation, then switch: set_dir
     bumps the EPT epoch, so the warm entry must not be served *)
  check_bool "warm fetch stable" true (Os.fetch_code os g = before);
  install_view os v;
  check_bool "post-switch fetch sees the view, not the stale TLB entry"
    true
    (Os.fetch_code os g = View.read_code v ~gva:g);
  check_bool "view really differs" true (Os.fetch_code os g <> before);
  View.destroy v

let test_cow_break_visible_on_next_fetch () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let cfg = Fc_benchkit.Profiles.config_of (profiles ()) "top" in
  let v1 = View.build ~hyp ~index:1 cfg in
  (* a byte-identical sibling forces v1's pages into shared frames, so
     the write below must break COW: a fresh frame is spliced into the
     installed table with no set_dir and no version change on the old
     frame — only the explicit flush hook can invalidate the TLB *)
  let v2 = View.build ~hyp ~index:2 cfg in
  let g = divergent_gva os v1 in
  install_view os v1;
  check_bool "warm fetch under the view" true
    (Os.fetch_code os g = View.read_code v1 ~gva:g);
  View.write_code v1 ~gva:g 0x90;
  check_bool "the write privatized a shared frame" true (View.cow_breaks v1 > 0);
  check_bool "next fetch sees the recovery write" true
    (Os.fetch_code os g = Some 0x90);
  check_bool "sibling view unaffected" true
    (View.read_code v2 ~gva:g <> Some 0x90);
  View.destroy v2;
  View.destroy v1

let test_inplace_recovery_visible_on_next_fetch () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let cfg = Fc_benchkit.Profiles.config_of (profiles ()) "top" in
  (* private frames: the recovery write lands in place, and only the
     frame-version check can invalidate the warm iTLB entry *)
  let v = View.build ~hyp ~share_frames:false ~index:1 cfg in
  let g = divergent_gva os v in
  install_view os v;
  check_bool "warm fetch under the view" true
    (Os.fetch_code os g = View.read_code v ~gva:g);
  View.write_code v ~gva:g 0x90;
  check_int "no COW involved" 0 (View.cow_breaks v);
  check_bool "next fetch sees the in-place write" true
    (Os.fetch_code os g = Some 0x90);
  View.destroy v

let test_dtlb_sees_new_mappings () =
  let os = Os.create (Lazy.force image) in
  (* pid 1 does not exist yet: its kernel stack page is unmapped, and
     the dTLB must not cache that negative answer *)
  let a = Layout.kstack_top ~pid:1 - 4 in
  check_bool "unmapped before spawn" true (Os.read_guest_byte os a = None);
  let (_ : Process.t) =
    Os.spawn os ~name:"x" [ Fc_machine.Action.Exit ]
  in
  check_bool "mapped after spawn" true (Os.read_guest_byte os a <> None)

let test_word_access_roundtrip () =
  let os = Os.create (Lazy.force image) in
  let a = Layout.kstack_top ~pid:0 - 8 in
  (match Os.read_guest_u32 os a with
  | None -> Alcotest.fail "kernel stack unmapped"
  | Some _ -> ());
  (* a u32 straddling a page boundary takes the byte path; one within a
     page takes the paired-u16 path — both must agree with byte reads *)
  let check_at addr =
    match Os.read_guest_u32 os addr with
    | None -> ()
    | Some w ->
        let byte i = Option.get (Os.read_guest_byte os (addr + i)) in
        check_int
          (Printf.sprintf "u32 at 0x%x composes from bytes" addr)
          (byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24))
          w
  in
  check_at a;
  check_at (Layout.kstack_top ~pid:0 - Layout.page_size - 2)

(* ---------------- view-tag survival across switches ---------------- *)

let counters os =
  let m = Fc_obs.Obs.metrics (Os.obs os) in
  fun key -> Option.value ~default:0 (Fc_obs.Metrics.find m key)

let test_seen_view_reentry_keeps_itlb_warm () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let p = profiles () in
  let v1 = View.build ~hyp ~index:1 (Profiles.config_of p "top") in
  let v2 = View.build ~hyp ~index:2 (Profiles.config_of p "apache") in
  let g = divergent_gva os v1 in
  install_view os v1;
  let expect = View.read_code v1 ~gva:g in
  check_bool "warm fetch under v1" true (Os.fetch_code os g = expect);
  (* bounce through v2 and back: both installs are pure tag swaps, so
     v1's warm entry must survive and revalidate by compare on re-entry *)
  install_view os v2;
  install_view os v1;
  let c = counters os in
  let hits = c "tlb.i_hits" and misses = c "tlb.i_misses" in
  let flushes = Ept.flushes (Os.ept os) in
  check_bool "re-entry fetch reads the view" true (Os.fetch_code os g = expect);
  check_int "re-entry is an iTLB hit" (hits + 1) (c "tlb.i_hits");
  check_int "no iTLB miss on re-entry" misses (c "tlb.i_misses");
  check_int "the round trip flushed nothing" flushes
    (Ept.flushes (Os.ept os));
  View.destroy v2;
  View.destroy v1

let test_cow_break_invalidates_only_broken_page () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let cfg = Fc_benchkit.Profiles.config_of (profiles ()) "top" in
  let v1 = View.build ~hyp ~index:1 cfg in
  (* byte-identical sibling: v1 and v2 share frames, so a write to v1
     breaks COW rather than landing in place *)
  let v2 = View.build ~hyp ~index:2 cfg in
  let g = divergent_gva os v1 in
  (* a second warm page, untouched by the break, to prove the
     invalidation really is frame-targeted *)
  let g2 = g + Fc_kernel.Layout.page_size in
  install_view os v2;
  let before = Os.fetch_code os g in
  let before2 = Os.fetch_code os g2 in
  check_bool "warm fetch under v2" true (before = View.read_code v2 ~gva:g);
  let c = counters os in
  (* the COW break copies the shared frame into a fresh private one for
     v1 and touches the displaced shared frame's version: only
     translations through that one frame die — v2 pays a single
     revalidation miss on the broken page, keeps every other warm entry,
     and never observes the writer's private byte *)
  View.write_code v1 ~gva:g 0x90;
  check_bool "the write privatized a shared frame" true (View.cow_breaks v1 > 0);
  let misses = c "tlb.i_misses" in
  check_bool "v2's fetch is unchanged" true (Os.fetch_code os g = before);
  check_int "one revalidation miss on the broken page" (misses + 1)
    (c "tlb.i_misses");
  check_bool "v2 never sees v1's private byte" true (before <> Some 0x90);
  let hits = c "tlb.i_hits" in
  check_bool "the refilled entry serves the same bytes" true
    (Os.fetch_code os g = before);
  check_bool "v2's unrelated page stayed warm" true
    (Os.fetch_code os g2 = before2);
  check_int "both as iTLB hits" (hits + 2) (c "tlb.i_hits");
  install_view os v1;
  check_bool "v1 sees its own write after switch-in" true
    (Os.fetch_code os g = Some 0x90);
  View.destroy v2;
  View.destroy v1

(* Regression for the quarantine/unload paths: retiring one view's tag
   must invalidate only that view's cached translations.  The pre-tag
   scheme full-flushed both TLBs here, taxing every surviving view. *)
let test_retire_view_spares_other_views () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let cfg = Fc_benchkit.Profiles.config_of (profiles ()) "top" in
  let v1 = View.build ~hyp ~index:1 cfg in
  let v2 = View.build ~hyp ~index:2 cfg in
  let g = divergent_gva os v1 in
  install_view os v1;
  let expect = Os.fetch_code os g in
  let c = counters os in
  Os.retire_view_translations os ~view:(View.index v2);
  let hits = c "tlb.i_hits" in
  check_bool "v1 fetch after retiring v2" true (Os.fetch_code os g = expect);
  check_int "v1's warm entry survived v2's retirement" (hits + 1)
    (c "tlb.i_hits");
  Os.retire_view_translations os ~view:(View.index v1);
  let misses = c "tlb.i_misses" in
  check_bool "v1 fetch after retiring v1" true (Os.fetch_code os g = expect);
  check_int "the retired view's entry is dead" (misses + 1)
    (c "tlb.i_misses");
  View.destroy v2;
  View.destroy v1

(* Generation wraparound: driving one view's generation past the field
   width must spill into an era bump that kills every outstanding tag at
   once — tags from the old era can never compare equal again. *)
let test_ept_gen_overflow_era_bump () =
  let e = Ept.create () in
  Ept.set_view e ~view:3;
  let t0 = Ept.tag e in
  Ept.bump e;
  let t1 = Ept.tag e in
  check_bool "a bump changes the tag" true (t1 <> t0);
  let max_gen = (1 lsl Ept.gen_bits) - 1 in
  (* drive the generation to the ceiling... *)
  for _ = 2 to max_gen do
    Ept.bump e
  done;
  check_int "at the ceiling" max_gen (Ept.gen e ~view:3);
  (* ...then one more bump must roll the era instead of overflowing *)
  Ept.bump e;
  check_int "generations restart in the new era" 0 (Ept.gen e ~view:3);
  let fresh = Ept.tag e in
  check_bool "old-era tags never match again" true
    (fresh <> t0 && fresh <> t1);
  check_bool "the tag stays non-negative" true (fresh >= 0)

(* ---------------- behavior parity: TLB on vs off ---------------- *)

(* The fingerprint machinery lives in test/differential.ml, shared with
   the superblock suite — this file exercises the {tlb} axis with
   superblocks off; test_sblocks.ml covers the full matrix. *)
let run_enforced ?tagged ~tlb ~fault_seed () =
  Differential.fingerprint ?tagged ~profiles:(profiles ()) ~sblocks:false ~tlb
    ~fault_seed ()

let test_parity_enforced_run () =
  let on = run_enforced ~tlb:true ~fault_seed:1 () in
  let off = run_enforced ~tlb:false ~fault_seed:1 () in
  Differential.check_parity ~label:"tlb-vs-no-tlb" ~expect:off ~got:on

let test_parity_tagged_run () =
  let tagged = run_enforced ~tagged:true ~tlb:true ~fault_seed:1 () in
  let untagged = run_enforced ~tagged:false ~tlb:true ~fault_seed:1 () in
  Differential.check_parity ~label:"tag-vs-untag" ~expect:untagged ~got:tagged

let prop_tlb_invisible =
  QCheck.Test.make
    ~name:"TLB'd and TLB-disabled guests are indistinguishable under faults"
    ~count:8 (QCheck.int_range 1 1_000_000) (fun seed ->
      run_enforced ~tlb:true ~fault_seed:seed ()
      = run_enforced ~tlb:false ~fault_seed:seed ())

let suites =
  [
    ( "tlb",
      let tc n f = Alcotest.test_case n `Quick f in
      [
        tc "direct-mapped slots, conflict eviction, invalidate_all"
          test_tlb_direct_mapped;
        tc "view switch (set_dir) invalidates warm iTLB entries"
          test_view_switch_invalidates_itlb;
        tc "COW break visible on the next fetch"
          test_cow_break_visible_on_next_fetch;
        tc "in-place recovery write visible on the next fetch"
          test_inplace_recovery_visible_on_next_fetch;
        tc "dTLB never caches negative translations"
          test_dtlb_sees_new_mappings;
        tc "word-level u32 access agrees with byte reads"
          test_word_access_roundtrip;
        tc "seen-view re-entry keeps iTLB entries warm (no flush)"
          test_seen_view_reentry_keeps_itlb_warm;
        tc "COW break invalidates only the broken page's frame"
          test_cow_break_invalidates_only_broken_page;
        tc "retiring a view spares other views' cached translations"
          test_retire_view_spares_other_views;
        tc "generation overflow rolls the era, killing old tags"
          test_ept_gen_overflow_era_bump;
        tc "enforced faulted run: full fingerprint parity"
          test_parity_enforced_run;
        tc "enforced faulted run: tagged caching is behavior-invisible"
          test_parity_tagged_run;
      ] );
    ( "tlb.properties",
      List.map QCheck_alcotest.to_alcotest [ prop_tlb_invisible ] );
  ]
