(* The software TLBs (lib/mem/tlb.ml + the Os fast paths): coherence
   under view switches, COW breaks and in-place recovery writes, dTLB
   visibility of new mappings, and the load-bearing property that the
   fast path is behavior-invisible — a TLB'd guest and a TLB-disabled
   guest retire the same instructions, charge the same cycles, emit the
   same traces and capture identical stats, faults and all. *)

module Os = Fc_machine.Os
module Process = Fc_machine.Process
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Governor = Fc_core.Governor
module View = Fc_core.View
module Stats = Fc_core.Stats
module Layout = Fc_kernel.Layout
module Image = Fc_kernel.Image
module Ept = Fc_mem.Ept
module App = Fc_apps.App
module Profiles = Fc_benchkit.Profiles
module Fault = Fc_faults.Fault
module Frand = Fc_faults.Frand
module Injector = Fc_faults.Injector
module J = Fc_obs.Jsonx

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let profiles () = Lazy.force Test_env.profiles

(* ---------------- the Tlb module itself ---------------- *)

module Tlb = Fc_mem.Tlb

let test_tlb_direct_mapped () =
  let t = Tlb.create ~bits:2 ~payload:0 () in
  check_int "2^bits entries" 4 (Tlb.size t);
  let e = Tlb.slot t 5 in
  Tlb.fill e ~tag:5 ~epoch:1 ~frame:7 ~version:3 ~bytes:Bytes.empty ~payload:9;
  check_int "tagged" 5 (Tlb.slot t 5).Tlb.tag;
  (* page 9 maps to the same slot (9 land 3 = 5 land 3): a conflicting
     fill evicts *)
  let e9 = Tlb.slot t 9 in
  check_bool "conflict slot" true (e == e9);
  check_bool "miss reads as wrong tag" true (e9.Tlb.tag <> 9);
  Tlb.invalidate_all t;
  check_int "invalidated" Tlb.no_tag (Tlb.slot t 5).Tlb.tag

(* ---------------- fetch-path coherence ---------------- *)

let image = lazy (Image.build_exn ())

(* A text address the view remaps to different bytes than the original
   kernel: warming the iTLB there and then changing the translation is
   exactly the staleness the epoch/version protocol must catch. *)
let divergent_gva os view =
  let img = Lazy.force image in
  let base = Image.text_base img in
  let rec go a =
    if a >= base + 0x40000 then Alcotest.fail "no divergent byte found"
    else if
      View.covers view ~gva:a && View.read_code view ~gva:a <> Os.fetch_code os a
    then a
    else go (a + 1)
  in
  go base

let install_view os view =
  List.iter
    (fun (dir, tbl) -> Ept.set_dir (Os.ept os) ~dir (Some tbl))
    (View.tables view)

let test_view_switch_invalidates_itlb () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let cfg = Fc_benchkit.Profiles.config_of (profiles ()) "top" in
  let v = View.build ~hyp ~index:1 cfg in
  let g = divergent_gva os v in
  let before = Os.fetch_code os g in
  (* warm the iTLB on the original translation, then switch: set_dir
     bumps the EPT epoch, so the warm entry must not be served *)
  check_bool "warm fetch stable" true (Os.fetch_code os g = before);
  install_view os v;
  check_bool "post-switch fetch sees the view, not the stale TLB entry"
    true
    (Os.fetch_code os g = View.read_code v ~gva:g);
  check_bool "view really differs" true (Os.fetch_code os g <> before);
  View.destroy v

let test_cow_break_visible_on_next_fetch () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let cfg = Fc_benchkit.Profiles.config_of (profiles ()) "top" in
  let v1 = View.build ~hyp ~index:1 cfg in
  (* a byte-identical sibling forces v1's pages into shared frames, so
     the write below must break COW: a fresh frame is spliced into the
     installed table with no set_dir and no version change on the old
     frame — only the explicit flush hook can invalidate the TLB *)
  let v2 = View.build ~hyp ~index:2 cfg in
  let g = divergent_gva os v1 in
  install_view os v1;
  check_bool "warm fetch under the view" true
    (Os.fetch_code os g = View.read_code v1 ~gva:g);
  View.write_code v1 ~gva:g 0x90;
  check_bool "the write privatized a shared frame" true (View.cow_breaks v1 > 0);
  check_bool "next fetch sees the recovery write" true
    (Os.fetch_code os g = Some 0x90);
  check_bool "sibling view unaffected" true
    (View.read_code v2 ~gva:g <> Some 0x90);
  View.destroy v2;
  View.destroy v1

let test_inplace_recovery_visible_on_next_fetch () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let cfg = Fc_benchkit.Profiles.config_of (profiles ()) "top" in
  (* private frames: the recovery write lands in place, and only the
     frame-version check can invalidate the warm iTLB entry *)
  let v = View.build ~hyp ~share_frames:false ~index:1 cfg in
  let g = divergent_gva os v in
  install_view os v;
  check_bool "warm fetch under the view" true
    (Os.fetch_code os g = View.read_code v ~gva:g);
  View.write_code v ~gva:g 0x90;
  check_int "no COW involved" 0 (View.cow_breaks v);
  check_bool "next fetch sees the in-place write" true
    (Os.fetch_code os g = Some 0x90);
  View.destroy v

let test_dtlb_sees_new_mappings () =
  let os = Os.create (Lazy.force image) in
  (* pid 1 does not exist yet: its kernel stack page is unmapped, and
     the dTLB must not cache that negative answer *)
  let a = Layout.kstack_top ~pid:1 - 4 in
  check_bool "unmapped before spawn" true (Os.read_guest_byte os a = None);
  let (_ : Process.t) =
    Os.spawn os ~name:"x" [ Fc_machine.Action.Exit ]
  in
  check_bool "mapped after spawn" true (Os.read_guest_byte os a <> None)

let test_word_access_roundtrip () =
  let os = Os.create (Lazy.force image) in
  let a = Layout.kstack_top ~pid:0 - 8 in
  (match Os.read_guest_u32 os a with
  | None -> Alcotest.fail "kernel stack unmapped"
  | Some _ -> ());
  (* a u32 straddling a page boundary takes the byte path; one within a
     page takes the paired-u16 path — both must agree with byte reads *)
  let check_at addr =
    match Os.read_guest_u32 os addr with
    | None -> ()
    | Some w ->
        let byte i = Option.get (Os.read_guest_byte os (addr + i)) in
        check_int
          (Printf.sprintf "u32 at 0x%x composes from bytes" addr)
          (byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24))
          w
  in
  check_at a;
  check_at (Layout.kstack_top ~pid:0 - Layout.page_size - 2)

(* ---------------- behavior parity: TLB on vs off ---------------- *)

(* The fingerprint machinery lives in test/differential.ml, shared with
   the superblock suite — this file exercises the {tlb} axis with
   superblocks off; test_sblocks.ml covers the full matrix. *)
let run_enforced ~tlb ~fault_seed =
  Differential.fingerprint ~profiles:(profiles ()) ~sblocks:false ~tlb
    ~fault_seed ()

let test_parity_enforced_run () =
  let on = run_enforced ~tlb:true ~fault_seed:1 in
  let off = run_enforced ~tlb:false ~fault_seed:1 in
  Differential.check_parity ~label:"tlb-vs-no-tlb" ~expect:off ~got:on

let prop_tlb_invisible =
  QCheck.Test.make
    ~name:"TLB'd and TLB-disabled guests are indistinguishable under faults"
    ~count:8 (QCheck.int_range 1 1_000_000) (fun seed ->
      run_enforced ~tlb:true ~fault_seed:seed
      = run_enforced ~tlb:false ~fault_seed:seed)

let suites =
  [
    ( "tlb",
      let tc n f = Alcotest.test_case n `Quick f in
      [
        tc "direct-mapped slots, conflict eviction, invalidate_all"
          test_tlb_direct_mapped;
        tc "view switch (set_dir) invalidates warm iTLB entries"
          test_view_switch_invalidates_itlb;
        tc "COW break visible on the next fetch"
          test_cow_break_visible_on_next_fetch;
        tc "in-place recovery write visible on the next fetch"
          test_inplace_recovery_visible_on_next_fetch;
        tc "dTLB never caches negative translations"
          test_dtlb_sees_new_mappings;
        tc "word-level u32 access agrees with byte reads"
          test_word_access_roundtrip;
        tc "enforced faulted run: full fingerprint parity"
          test_parity_enforced_run;
      ] );
    ( "tlb.properties",
      List.map QCheck_alcotest.to_alcotest [ prop_tlb_invisible ] );
  ]
