(* The fleet host (lib/host): the sharding pool, the merge-on-export
   aggregation, and the load-bearing property that sharding is
   behavior-invisible — a fleet's merged fingerprint is identical for 1
   domain and N domains, and identical across two runs at the same seed.

   On OCaml 4.14 the whole file runs against the sequential fallback
   backend (lib/host/backend_seq.ml.in), which is exactly the
   compiler-matrix smoke the fleet layer needs: same API, same results,
   no Domains. *)

module Os = Fc_machine.Os
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Stats = Fc_core.Stats
module App = Fc_apps.App
module Profiles = Fc_benchkit.Profiles
module Frand = Fc_faults.Frand
module Frame_cache = Fc_mem.Frame_cache
module Pool = Fc_host.Pool
module HFleet = Fc_host.Fleet
module BFleet = Fc_benchkit.Fleet

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let profiles () = Lazy.force Test_env.profiles

(* ---------------- the pool ---------------- *)

let test_pool_map_order () =
  let pool = Pool.create ~domains:4 () in
  check_int "domains recorded" 4 (Pool.domains pool);
  let r = Pool.map pool 100 (fun i -> i * i) in
  check_int "length" 100 (Array.length r);
  Array.iteri (fun i v -> check_int "slot in index order" (i * i) v) r;
  check_int "empty map" 0 (Array.length (Pool.map pool 0 (fun i -> i)))

let test_pool_fewer_jobs_than_workers () =
  let pool = Pool.create ~domains:8 () in
  let r = Pool.map pool 3 (fun i -> i + 10) in
  Alcotest.(check (list int)) "all jobs ran" [ 10; 11; 12 ] (Array.to_list r)

let test_pool_worker_exception_propagates () =
  let pool = Pool.create ~domains:2 () in
  match Pool.map pool 4 (fun i -> if i = 3 then failwith "boom" else i) with
  | _ -> Alcotest.fail "expected the worker exception to surface"
  | exception _ -> ()

let test_pool_invalid_domains () =
  match Pool.create ~domains:0 () with
  | _ -> Alcotest.fail "domains:0 accepted"
  | exception Invalid_argument _ -> ()

(* The sequential-fallback smoke: on 4.14 [Pool.parallel] is false and
   everything above already ran sequentially; on 5.x this pins that the
   Domains backend was actually selected, so the compiler matrix covers
   both backends. *)
let test_backend_selection () =
  let expected = Sys.ocaml_version >= "5." in
  check_bool "backend matches compiler" expected Pool.parallel

(* ---------------- Frand.mix ---------------- *)

let test_mix_streams () =
  check_int "deterministic" (Frand.mix 42 7) (Frand.mix 42 7);
  check_bool "streams differ" true (Frand.mix 42 7 <> Frand.mix 42 8);
  check_bool "seeds differ" true (Frand.mix 42 7 <> Frand.mix 43 7);
  (* derived seeds feed Frand.create: equal streams from equal mixes *)
  let a = Frand.create (Frand.mix 1 3) and b = Frand.create (Frand.mix 1 3) in
  for _ = 1 to 16 do
    check_int "derived streams equal" (Frand.int a 1000) (Frand.int b 1000)
  done

(* ---------------- Stats.merge ---------------- *)

let app ~charged ~switches =
  {
    Stats.a_run_cycles = 5;
    a_run_slices = 1;
    a_cycles_charged = charged;
    a_view_switches = switches;
    a_recoveries = 0;
    a_recovered_bytes = 0;
    a_cow_breaks = 0;
  }

let stats ~cycles ~charged ~switches ~apps =
  {
    Stats.guest_cycles = cycles;
    rounds = 2;
    context_switches = 3;
    vcpus = 1;
    breakpoint_exits = 4;
    invalid_opcode_exits = 0;
    hypervisor_cycles = charged;
    view_switches = switches;
    switches_skipped = 0;
    switches_deferred = 0;
    recoveries = 0;
    recovered_bytes = 0;
    views_loaded = 1;
    view_pages = 7;
    shared_frames = 2;
    cow_breaks = 0;
    storms = 0;
    degradations = 0;
    renarrows = 0;
    quarantines = 0;
    broken_backtraces = 0;
    per_app = apps;
  }

let test_stats_merge () =
  let a =
    stats ~cycles:100 ~charged:10 ~switches:2
      ~apps:[ ("bash", app ~charged:10 ~switches:2) ]
  in
  let b =
    stats ~cycles:50 ~charged:6 ~switches:3
      ~apps:
        [ ("bash", app ~charged:2 ~switches:1); ("top", app ~charged:4 ~switches:2) ]
  in
  let m = Stats.merge [ a; b ] in
  check_int "guest_cycles summed" 150 m.Stats.guest_cycles;
  check_int "hypervisor_cycles summed" 16 m.Stats.hypervisor_cycles;
  check_int "view_pages summed" 14 m.Stats.view_pages;
  check_int "two apps" 2 (List.length m.Stats.per_app);
  let bash = List.assoc "bash" m.Stats.per_app in
  check_int "bash charged merged" 12 bash.Stats.a_cycles_charged;
  check_int "bash switches merged" 3 bash.Stats.a_view_switches;
  check_bool "attribution preserved by merge" true (Stats.attribution_ok m);
  (* merge is order-insensitive *)
  Alcotest.(check bool)
    "commutative" true
    (Stats.merge [ b; a ] = m);
  check_int "merge [] is zero" 0 (Stats.merge []).Stats.guest_cycles

(* ---------------- fleet determinism ---------------- *)

(* Small fleets keep the property suite fast; the bench arm's pinned
   40-guest cell covers the same property at scale in CI. *)
let fleet_guests = 8
let fleet_seed = 5

let cell domains =
  (BFleet.run_cell (profiles ()) ~seed:fleet_seed ~domains ~guests:fleet_guests)
    .BFleet.c_report

let test_fingerprint_across_domains () =
  let base = cell 1 in
  check_int "all guests ran" fleet_guests base.HFleet.r_guests;
  List.iter
    (fun domains ->
      let r = cell domains in
      check_string
        (Printf.sprintf "fingerprint identical at %d domains" domains)
        base.HFleet.r_fingerprint r.HFleet.r_fingerprint;
      check_int "instructions identical" base.HFleet.r_instructions
        r.HFleet.r_instructions;
      check_int "unique frames identical" base.HFleet.r_unique_frames
        r.HFleet.r_unique_frames;
      check_int "total frames identical" base.HFleet.r_total_frames
        r.HFleet.r_total_frames)
    [ 2; 4 ]

let test_fingerprint_across_runs () =
  let a = cell 2 and b = cell 2 in
  check_string "same seed, same fleet" a.HFleet.r_fingerprint
    b.HFleet.r_fingerprint;
  let c =
    (BFleet.run_cell (profiles ()) ~seed:(fleet_seed + 1) ~domains:2
       ~guests:fleet_guests)
      .BFleet.c_report
  in
  check_bool "different seed, different fleet" true
    (a.HFleet.r_fingerprint <> c.HFleet.r_fingerprint)

let test_merged_attribution () =
  let r = cell 2 in
  check_bool "merged per-app sums equal merged globals" true
    r.HFleet.r_per_app_ok;
  (* the merged stats really are the sum of the guests' *)
  let by_hand =
    Stats.merge
      (List.map
         (fun g -> g.HFleet.g_stats)
         (Array.to_list r.HFleet.r_guests_detail))
  in
  check_int "merged view_switches" by_hand.Stats.view_switches
    r.HFleet.r_merged.Stats.view_switches

(* ---------------- cross-guest frame dedup ---------------- *)

(* Two byte-identical guests (same app, same script, no faults): every
   resident view frame of one has a twin in the other, so the fleet-wide
   unique count is exactly half the total and the dedup ratio is 1/2. *)
let identical_guest profiles index =
  let app = App.find_exn "top" in
  let os = Os.create ~config:(App.os_config app) (Profiles.image profiles) in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable hyp in
  let (_ : int) = Facechange.load_view fc (Profiles.config_of profiles "top") in
  let (_ : Fc_machine.Process.t) = Os.spawn os ~name:"top" (app.App.script 2) in
  let outcome =
    match Os.run ~max_rounds:20_000 os with
    | () -> "ok"
    | exception Os.Guest_panic m -> "panic: " ^ m
  in
  HFleet.guest ~index ~app:"top" ~outcome ~stats:(Stats.capture fc)
    ~instructions:(Os.instructions os) ~cycles:(Os.cycles os)
    ~frame_keys:(Frame_cache.resident_keys (Hyp.frame_cache hyp))
    ()

let test_identical_guests_dedup () =
  let r = HFleet.run ~domains:2 ~guests:2 (identical_guest (profiles ())) in
  let g0 = r.HFleet.r_guests_detail.(0) and g1 = r.HFleet.r_guests_detail.(1) in
  check_string "byte-identical guests digest alike" g0.HFleet.g_digest
    g1.HFleet.g_digest;
  check_bool "views materialized frames" true (r.HFleet.r_total_frames > 0);
  check_int "every frame has its cross-guest twin"
    (2 * r.HFleet.r_unique_frames)
    r.HFleet.r_total_frames;
  Alcotest.(check (float 1e-9)) "dedup ratio is 1/2" 0.5 r.HFleet.r_dedup_ratio

let suites =
  [
    ( "fleet",
      [
        Alcotest.test_case "pool: map in index order" `Quick
          test_pool_map_order;
        Alcotest.test_case "pool: fewer jobs than workers" `Quick
          test_pool_fewer_jobs_than_workers;
        Alcotest.test_case "pool: worker exception propagates" `Quick
          test_pool_worker_exception_propagates;
        Alcotest.test_case "pool: invalid domains rejected" `Quick
          test_pool_invalid_domains;
        Alcotest.test_case "backend matches compiler (seq fallback on 4.14)"
          `Quick test_backend_selection;
        Alcotest.test_case "Frand.mix derives stable streams" `Quick
          test_mix_streams;
        Alcotest.test_case "Stats.merge sums fields and apps" `Quick
          test_stats_merge;
        Alcotest.test_case "fingerprint identical across 1/2/4 domains" `Slow
          test_fingerprint_across_domains;
        Alcotest.test_case "fingerprint identical across runs, seed-sensitive"
          `Slow test_fingerprint_across_runs;
        Alcotest.test_case "merged per-app attribution equals globals" `Slow
          test_merged_attribution;
        Alcotest.test_case "byte-identical guests dedup 2:1" `Slow
          test_identical_guests_dedup;
      ] );
  ]
