(* Decode-once superblocks (lib/machine/cpu.ml + the Os block cache):
   coherence of the invalidation sources — a view switch that remaps a
   page to a different host frame, the backing frame's version (COW
   breaks and in-place recovery writes), trap-set changes — plus the
   retention fast paths (an EPT epoch bump whose translations are
   unchanged restamps warm blocks instead of rebuilding them, and the
   per-frame store resurrects blocks when a view switches back); chain
   fallback across invalidated targets; interrupt delivery parity; and
   the full {sblocks} x {tlb} differential matrix under random fault
   plans.  Every test runs its scenario on twin guests (superblocks on
   and off) and requires identical observables, so the coherence
   machinery is proven not just to invalidate, but to invalidate without
   changing behavior. *)

module Os = Fc_machine.Os
module Process = Fc_machine.Process
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Governor = Fc_core.Governor
module View = Fc_core.View
module Ept = Fc_mem.Ept
module Phys = Fc_mem.Phys_mem
module Image = Fc_kernel.Image
module Layout = Fc_kernel.Layout
module Irq_paths = Fc_kernel.Irq_paths
module Metrics = Fc_obs.Metrics
module App = Fc_apps.App
module Profiles = Fc_benchkit.Profiles

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let profiles () = Lazy.force Test_env.profiles
let image () = Lazy.force Test_env.image

let metric os key =
  Option.value ~default:0 (Metrics.find (Fc_obs.Obs.metrics (Os.obs os)) key)

(* ---------------- twin-guest scenario runner ---------------- *)

(* Run [scenario] on one guest with full tracing armed.  [noted] is a
   per-run scratchpad: scheduled hooks stash counter snapshots there so a
   test can compare hook-time values against end-of-run values without
   sharing mutable state between the two twins. *)
let run_engine ~sblocks scenario =
  let os = Os.create ~sblocks (image ()) in
  let noted : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let ih = ref 0 and eh = ref 0 in
  Os.set_trace os (Some (fun a len -> ih := (((!ih * 31) + a) * 31) + len));
  Os.set_event_trace os (Some (fun ev -> eh := (!eh * 31) + Hashtbl.hash ev));
  scenario os noted;
  ( os,
    noted,
    (Os.instructions os, Os.cycles os, !ih, !eh, Os.vmi_current_task os) )

let note os noted name key = Hashtbl.replace noted name (metric os key)
let noted_exn noted key = Hashtbl.find noted key

(* Identical observables on both twins, or the scenario is not
   behavior-invisible under superblocks.  Returns the sblocks guest (and
   its scratchpad) for counter assertions. *)
let twin_check ~label scenario =
  let os_on, noted_on, on = run_engine ~sblocks:true scenario in
  let _os_off, _noted_off, off = run_engine ~sblocks:false scenario in
  let i_off, c_off, ih_off, eh_off, task_off = off in
  let i_on, c_on, ih_on, eh_on, task_on = on in
  check_int (label ^ ": instructions retired") i_off i_on;
  check_int (label ^ ": cycles") c_off c_on;
  check_int (label ^ ": instruction trace") ih_off ih_on;
  check_int (label ^ ": call/return events") eh_off eh_on;
  check_bool (label ^ ": VMI current task") true (task_off = task_on);
  (os_on, noted_on)

let spawn_app os ~name ?(len = 16) () =
  let app = App.find_exn name in
  ignore (Os.spawn os ~name (app.App.script len) : Process.t)

(* ---------------- invalidation sources ---------------- *)

(* View switch: Facechange flips the fetch path between the bound app's
   view frames and the full-view frames on every context switch, so
   kernel-text pages really change host frame mid-run.  A warm block
   whose page now maps elsewhere must never execute — the probe's
   re-translation kills it — while the per-instruction twin proves the
   kill is behavior-invisible. *)
let test_view_switch_invalidates () =
  let scenario os noted =
    let hyp = Hyp.attach os in
    let fc = Facechange.enable ~governor:Governor.default_policy hyp in
    let p = profiles () in
    ignore (Facechange.load_view fc (Profiles.config_of p "top") : int);
    spawn_app os ~name:"top" ~len:8 ();
    (* unbound: runs under the full view, so every context switch between
       the two remaps the shared kernel text *)
    spawn_app os ~name:"gzip" ();
    Os.schedule_at_round os 3 (fun os -> note os noted "hits_pre" "sb.hits");
    Os.run os
  in
  let os_on, noted = twin_check ~label:"view-switch" scenario in
  check_bool "blocks warm under switching" true (noted_exn noted "hits_pre" > 0);
  check_bool "remapped pages invalidated warm blocks" true
    (metric os_on "sb.invalidations" > 0);
  (* the store bounds the rebuild cost: switching back to a frame already
     decoded resurrects its blocks, so hits outnumber builds even under
     per-context-switch view churn *)
  check_bool "retention keeps rebuilds below hits" true
    (metric os_on "sb.hits" > metric os_on "sb.blocks_built")

(* The converse retention property: [Ept.set_dir] bumps the epoch even
   when the directories it installs translate identically (install a
   view, restore the original — net effect nil).  Warm blocks must be
   restamped in place, not invalidated: the epoch is a fast path, the
   frame identity is the truth. *)
let test_epoch_restamp_retains () =
  let scenario os noted =
    let hyp = Hyp.attach os in
    let cfg = Profiles.config_of (profiles ()) "top" in
    let v = View.build ~hyp ~index:1 cfg in
    spawn_app os ~name:"gzip" ();
    Os.schedule_at_round os 3 (fun os ->
        note os noted "hits_pre" "sb.hits";
        note os noted "flushes_pre" "tlb.i_flushes";
        List.iter
          (fun (dir, tbl) -> Ept.set_dir (Os.ept os) ~dir (Some tbl))
          (View.tables v);
        List.iter
          (fun (dir, _) ->
            Ept.set_dir (Os.ept os) ~dir (Hyp.original_table hyp ~dir))
          (View.tables v));
    Os.run os;
    note os noted "flushes_end" "tlb.i_flushes";
    View.destroy v
  in
  let os_on, noted = twin_check ~label:"epoch-restamp" scenario in
  check_bool "blocks warm before the bump" true (noted_exn noted "hits_pre" > 0);
  check_bool "the epoch really moved" true
    (noted_exn noted "flushes_end" > noted_exn noted "flushes_pre");
  check_int "unchanged translations never invalidate" 0
    (metric os_on "sb.invalidations")

(* In-place write: [Phys.touch] on the hot syscall-path text frame bumps
   its version without changing a byte — the signal an in-place
   lazy-recovery write emits, and the only invalidation source in this
   scenario (no set_dir, no map_page, no table_set after boot). *)
let test_version_invalidates () =
  let scenario os noted =
    spawn_app os ~name:"gzip" ();
    Os.schedule_at_round os 3 (fun os ->
        note os noted "invals_pre" "sb.invalidations";
        note os noted "hits_pre" "sb.hits";
        note os noted "flushes_at_write" "tlb.i_flushes";
        let a = Os.resolve_exn os "syscall_call" in
        let gpa_page = Layout.page_of (Layout.gva_to_gpa a) in
        match Os.ram_frame os ~gpa_page with
        | Some frame -> Phys.touch (Os.phys os) frame
        | None -> Alcotest.fail "syscall_call frame missing");
    Os.run os;
    note os noted "flushes_end" "tlb.i_flushes"
  in
  let os_on, noted = twin_check ~label:"in-place-write" scenario in
  check_bool "blocks warm before the write" true (noted_exn noted "hits_pre" > 0);
  check_int "no invalidations before the write" 0 (noted_exn noted "invals_pre");
  check_bool "the write invalidated warm blocks" true
    (metric os_on "sb.invalidations" > 0);
  (* and the epoch never moved: the invalidation was version-driven *)
  check_int "no epoch bump involved"
    (noted_exn noted "flushes_at_write")
    (noted_exn noted "flushes_end")

(* A COW break during enforced execution: the first write into a shared
   view frame splices a private copy into the installed table
   ([Ept.table_set] + the flush hook) while superblocks built from the
   old frame are live.  Rewriting the byte with its current value keeps
   the twins comparable. *)
let test_cow_break_invalidates () =
  let covered_gva v =
    let base = Image.text_base (image ()) in
    let rec go a =
      if a >= base + 0x40000 then Alcotest.fail "no covered page"
      else if View.covers v ~gva:a then a
      else go (a + Layout.page_size)
    in
    go base
  in
  let scenario os noted =
    let hyp = Hyp.attach os in
    let fc = Facechange.enable ~governor:Governor.default_policy hyp in
    let p = profiles () in
    let idx = Facechange.load_view fc (Profiles.config_of p "top") in
    (* a byte-identical sibling forces the loaded view's pages into
       shared frames, so the write below must break COW *)
    let sib = View.build ~hyp ~index:77 (Profiles.config_of p "top") in
    spawn_app os ~name:"top" ~len:8 ();
    Os.schedule_at_round os 4 (fun os ->
        note os noted "hits_pre" "sb.hits";
        match Facechange.find_view fc idx with
        | None -> Alcotest.fail "view vanished"
        | Some v -> (
            let g = covered_gva v in
            match View.read_code v ~gva:g with
            | Some b ->
                View.write_code v ~gva:g b;
                Hashtbl.replace noted "cow_breaks" (View.cow_breaks v)
            | None -> Alcotest.fail "unreadable view byte"));
    Os.run os;
    ignore (sib : View.t)
  in
  let os_on, noted = twin_check ~label:"cow-break" scenario in
  check_bool "blocks warm before the break" true (noted_exn noted "hits_pre" > 0);
  check_bool "the write privatized a shared frame" true
    (noted_exn noted "cow_breaks" > 0);
  check_bool "warm blocks invalidated" true (metric os_on "sb.invalidations" > 0)

(* [Os.flush_fetch_tlbs] — the hook the view layer fires after a
   table_set splice — bumps the epoch conservatively over every page.
   Pages the splice did not actually remap must survive it (restamp, not
   rebuild); a page the splice did remap changes frame and is caught by
   the probe's re-translation, which the COW test exercises end to end. *)
let test_flush_hook_restamps_unchanged () =
  let scenario os noted =
    spawn_app os ~name:"gzip" ();
    Os.schedule_at_round os 3 (fun os ->
        note os noted "invals_pre" "sb.invalidations";
        note os noted "hits_pre" "sb.hits";
        note os noted "built_pre" "sb.blocks_built";
        Os.flush_fetch_tlbs os);
    Os.run os
  in
  let os_on, noted = twin_check ~label:"flush-hook" scenario in
  check_bool "blocks warm before the flush" true (noted_exn noted "hits_pre" > 0);
  check_int "no invalidations before the flush" 0 (noted_exn noted "invals_pre");
  check_int "unchanged mappings survive the flush" 0
    (metric os_on "sb.invalidations");
  check_bool "warm execution continued after the flush" true
    (metric os_on "sb.hits" > noted_exn noted "hits_pre")

(* Chained blocks: direct jumps/calls follow sb_next without re-probing
   the cache — but a chain link into an invalidated target must fall
   back to a rebuild, never execute the stale block. *)
let test_chain_rebuild_fallback () =
  let scenario os noted =
    spawn_app os ~name:"gzip" ();
    Os.schedule_at_round os 3 (fun os ->
        note os noted "chains_pre" "sb.chain_follows";
        note os noted "built_pre" "sb.blocks_built";
        (* version-bump the hot syscall-path frame: its blocks (and the
           store's copies) die for good, so chain links into them must
           fall back to real rebuilds *)
        let a = Os.resolve_exn os "syscall_call" in
        let gpa_page = Layout.page_of (Layout.gva_to_gpa a) in
        match Os.ram_frame os ~gpa_page with
        | Some frame -> Phys.touch (Os.phys os) frame
        | None -> Alcotest.fail "syscall_call frame missing");
    Os.run os
  in
  let os_on, noted = twin_check ~label:"chain-fallback" scenario in
  check_bool "chains were followed before the flush" true
    (noted_exn noted "chains_pre" > 0);
  check_bool "invalidated chain targets were rebuilt" true
    (metric os_on "sb.blocks_built" > noted_exn noted "built_pre");
  check_bool "chains resumed after the rebuild" true
    (metric os_on "sb.chain_follows" > noted_exn noted "chains_pre")

(* Trap-set changes: arming a breakpoint on an address in the {e middle}
   of a hot block must split rebuilt blocks at that address, so the
   entry-only trap probe still observes it — the per-instruction twin is
   the oracle. *)
let test_trap_set_splits_blocks () =
  let scenario os noted =
    spawn_app os ~name:"gzip" ();
    Os.schedule_at_round os 3 (fun os ->
        note os noted "invals_pre" "sb.invalidations";
        (* the second instruction of syscall_call: interior to a block
           warmed by every preceding syscall *)
        Os.set_trap os (Os.resolve_exn os "syscall_call" + 1));
    Os.run os
  in
  let os_on, noted = twin_check ~label:"trap-split" scenario in
  check_int "no invalidations before arming" 0 (noted_exn noted "invals_pre");
  check_bool "arming the trap invalidated warm blocks" true
    (metric os_on "sb.invalidations" > 0)

(* Interrupts are delivered at block boundaries only (between CPU
   invocations); the handler's full execution — and the vCPU state VMI
   reads afterwards — must match the per-instruction path. *)
let test_interrupt_at_boundary () =
  let scenario os noted =
    spawn_app os ~name:"apache" ~len:8 ();
    Os.schedule_at_round os 3 (fun os ->
        Hashtbl.replace noted "fired" 1;
        Os.inject_irq os Irq_paths.Net_rx_tcp;
        Os.inject_irq os Irq_paths.Disk);
    Os.run os
  in
  let _os_on, noted = twin_check ~label:"interrupt" scenario in
  check_int "interrupts were injected" 1 (noted_exn noted "fired")

(* ---------------- decode-cache eviction (regression) ---------------- *)

(* Churning views used to leak one decode line per freed view frame:
   the per-frame decode cache was never evicted, and a freed frame's
   number could be recycled for a non-code page (a kernel stack), parking
   its stale line forever.  With the release hook the line dies with the
   frame, so repeated load/run/unload cycles hold the cache at a steady
   size.  The spawn-before-load ordering below is what forced the leak in
   the unfixed code: each cycle the previous view's frame numbers are
   recycled for kernel stacks and the new view allocates fresh numbers. *)
let test_decode_cache_bounded_under_view_churn () =
  let os = Os.create (image ()) in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable ~governor:Governor.default_policy hyp in
  let p = profiles () in
  let app = App.find_exn "top" in
  let sizes =
    List.init 6 (fun i ->
        ignore (Os.spawn os ~name:"top" (app.App.script 3) : Process.t);
        let idx = Facechange.load_view fc (Profiles.config_of p "top") in
        Os.run os;
        Facechange.unload_view fc idx;
        ignore (i : int);
        Os.decode_cache_frames os)
  in
  let steady = List.nth sizes 1 in
  List.iteri
    (fun i s ->
      if i >= 1 then
        check_int (Printf.sprintf "cycle %d holds the steady size" i) steady s)
    sizes

(* ---------------- the full differential matrix ---------------- *)

let test_enforced_matrix () =
  let p = profiles () in
  let base, _ =
    Differential.run ~tagged:false ~profiles:p ~sblocks:false ~tlb:false
      ~fault_seed:2 ()
  in
  List.iter
    (fun (tagged, sblocks, tlb) ->
      let fp, en =
        Differential.run ~tagged ~profiles:p ~sblocks ~tlb ~fault_seed:2 ()
      in
      let label = Differential.describe ~tagged ~sblocks ~tlb () in
      Differential.check_parity ~label ~expect:base ~got:fp;
      if sblocks then begin
        check_bool (label ^ ": blocks built") true (en.Differential.en_sb_built > 0);
        check_bool (label ^ ": block hits") true (en.Differential.en_sb_hits > 0);
        check_bool (label ^ ": chains followed") true
          (en.Differential.en_sb_chain_follows > 0);
        check_bool (label ^ ": view switching invalidates") true
          (en.Differential.en_sb_invalidations > 0)
      end
      else begin
        check_int (label ^ ": sb counters silent") 0 en.Differential.en_sb_built;
        check_int (label ^ ": sb hits silent") 0 en.Differential.en_sb_hits
      end)
    (List.tl Differential.tagged_configs)

let prop_matrix_invisible =
  QCheck.Test.make
    ~name:
      "tagged, superblock'd, TLB'd and plain guests are indistinguishable \
       under faults"
    ~count:4 (QCheck.int_range 1 1_000_000) (fun seed ->
      let p = profiles () in
      let base =
        Differential.fingerprint ~tagged:false ~profiles:p ~sblocks:false
          ~tlb:false ~fault_seed:seed ()
      in
      List.for_all
        (fun (tagged, sblocks, tlb) ->
          Differential.fingerprint ~tagged ~profiles:p ~sblocks ~tlb
            ~fault_seed:seed ()
          = base)
        (List.tl Differential.tagged_configs))

let suites =
  [
    ( "sblocks",
      let tc n f = Alcotest.test_case n `Quick f in
      [
        tc "view switch to different frames invalidates warm blocks"
          test_view_switch_invalidates;
        tc "epoch bump with unchanged translations restamps, never rebuilds"
          test_epoch_restamp_retains;
        tc "in-place code write (frame version) invalidates warm blocks"
          test_version_invalidates;
        tc "COW break during enforced execution invalidates warm blocks"
          test_cow_break_invalidates;
        tc "flush_fetch_tlbs leaves unchanged mappings warm"
          test_flush_hook_restamps_unchanged;
        tc "chained jump across an invalidated target rebuilds, then re-chains"
          test_chain_rebuild_fallback;
        tc "arming a trap inside a hot block splits rebuilt blocks"
          test_trap_set_splits_blocks;
        tc "interrupt at a block boundary sees identical vCPU state"
          test_interrupt_at_boundary;
        tc "decode cache stays bounded under view churn"
          test_decode_cache_bounded_under_view_churn;
        tc "enforced faulted run: fingerprint parity across the matrix"
          test_enforced_matrix;
      ] );
    ( "sblocks.properties",
      List.map QCheck_alcotest.to_alcotest [ prop_matrix_invisible ] );
  ]
