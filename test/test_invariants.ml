(* Property-based tests of the system's core invariants: view
   materialization, recovery idempotence, assembler well-formedness, and
   a workload fuzzer that throws random syscall scripts at an enforced
   guest. *)

module Action = Fc_machine.Action
module Process = Fc_machine.Process
module Os = Fc_machine.Os
module Image = Fc_kernel.Image
module Layout = Fc_kernel.Layout
module Hyp = Fc_hypervisor.Hypervisor
module View = Fc_core.View
module View_config = Fc_profiler.View_config
module Facechange = Fc_core.Facechange
module Range_list = Fc_ranges.Range_list
module Segment = Fc_ranges.Segment
module Asm = Fc_isa.Asm
module Insn = Fc_isa.Insn
module Scan = Fc_isa.Scan

let image = lazy (Image.build_exn ())

(* ------------------------------------------------------------------ *)
(* Assembler properties                                                *)
(* ------------------------------------------------------------------ *)

let gen_func_specs =
  let open QCheck.Gen in
  let gen_item callees =
    frequency
      [
        (3, map (fun n -> Asm.Fill (n + 1)) (int_bound 60));
        ( 2,
          if callees = [] then map (fun n -> Asm.Fill (n + 1)) (int_bound 10)
          else map (fun i -> Asm.Call (List.nth callees (i mod List.length callees)))
            (int_bound 100) );
        (1, map (fun id -> Asm.Block_point (id land 0xff)) (int_bound 30));
      ]
  in
  (* functions may only call later functions: acyclic by construction *)
  let gen_spec idx total =
    let callees = List.init (total - idx - 1) (fun k -> Printf.sprintf "f%d" (idx + 1 + k)) in
    let* items = list_size (int_bound 6) (gen_item callees) in
    let* min_size = int_range 16 400 in
    return { Asm.fname = Printf.sprintf "f%d" idx; items; min_size }
  in
  let* n = int_range 1 12 in
  let rec build i acc =
    if i >= n then return (List.rev acc)
    else
      let* s = gen_spec i n in
      build (i + 1) (s :: acc)
  in
  build 0 []

let arb_specs =
  QCheck.make gen_func_specs ~print:(fun specs ->
      String.concat ";" (List.map (fun s -> s.Asm.fname) specs))

let unit_reader (u : Asm.unit_image) a =
  let off = a - u.Asm.base in
  if off >= 0 && off < Bytes.length u.Asm.code then
    Some (Bytes.get_uint8 u.Asm.code off)
  else None

let prop_asm_layout =
  QCheck.Test.make ~name:"assembled functions: aligned, sized, prologue'd, in order"
    ~count:150 arb_specs (fun specs ->
      match Asm.assemble ~base:0x10000 specs with
      | Error _ -> false
      | Ok u ->
          let read = unit_reader u in
          let rec check last = function
            | [] -> true
            | (p : Asm.placed) :: rest ->
                p.Asm.addr mod 16 = 0
                && p.Asm.addr >= last
                && p.Asm.size >= 5
                && Scan.is_prologue_at ~read p.Asm.addr
                && check (p.Asm.addr + p.Asm.size) rest
          in
          check u.Asm.base u.Asm.functions)

let prop_asm_decodable =
  QCheck.Test.make ~name:"every assembled body decodes as straight-line valid code"
    ~count:100 arb_specs (fun specs ->
      match Asm.assemble ~base:0x10000 specs with
      | Error _ -> false
      | Ok u ->
          let read = unit_reader u in
          List.for_all
            (fun (p : Asm.placed) ->
              let rec walk a =
                if a >= p.Asm.addr + p.Asm.size then true
                else
                  match Insn.decode ~read a with
                  | Ok (Insn.Ret, len) -> a + len = p.Asm.addr + p.Asm.size
                  | Ok (_, len) -> walk (a + len)
                  | Error _ -> false
              in
              walk p.Asm.addr)
            u.Asm.functions)

let prop_asm_yields_even =
  QCheck.Test.make ~name:"block points land at even offsets (resume stays on UD2 phase)"
    ~count:100 arb_specs (fun specs ->
      match Asm.assemble ~base:0x10000 specs with
      | Error _ -> false
      | Ok u ->
          let read = unit_reader u in
          List.for_all
            (fun (p : Asm.placed) ->
              let rec walk a =
                if a >= p.Asm.addr + p.Asm.size then true
                else
                  match Insn.decode ~read a with
                  | Ok (Insn.Yield _, len) -> a land 1 = 0 && walk (a + len)
                  | Ok (_, len) -> walk (a + len)
                  | Error _ -> false
              in
              walk p.Asm.addr)
            u.Asm.functions)

(* ------------------------------------------------------------------ *)
(* View materialization invariant                                      *)
(* ------------------------------------------------------------------ *)

(* Pick random base-kernel spans out of the image and check the
   materialized view byte-for-byte: original code inside the
   whole-function expansion of each span, phase-aligned UD2 outside. *)
let gen_config =
  let open QCheck.Gen in
  let img = Lazy.force image in
  let fns = Array.of_list (Image.functions img) in
  let* k = int_range 0 8 in
  let* picks = list_repeat k (int_bound (Array.length fns - 1)) in
  let ranges =
    List.fold_left
      (fun acc i ->
        let p = fns.(i) in
        (* a sub-span inside the function *)
        let lo = p.Asm.addr + (i mod max 1 (p.Asm.size / 2)) in
        Range_list.add_range acc Segment.Base_kernel ~lo ~hi:(lo + 4))
      Range_list.empty picks
  in
  return (View_config.make ~app:"prop" ranges)

let arb_config =
  QCheck.make gen_config ~print:(fun c -> View_config.to_string c)

let expanded_functions img (cfg : View_config.t) =
  (* ground truth for the whole-function expansion, via the image's own
     function table (the view must agree while using only byte scans) *)
  List.filter
    (fun (p : Asm.placed) ->
      List.exists
        (fun (seg, (s : Fc_ranges.Span.t)) ->
          seg = Segment.Base_kernel
          && s.Fc_ranges.Span.lo < p.Asm.addr + p.Asm.size
          && p.Asm.addr < s.Fc_ranges.Span.hi)
        (Range_list.to_list cfg.View_config.ranges))
    (Image.functions img)

let prop_view_contents =
  QCheck.Test.make ~name:"view = original inside expanded functions, UD2 outside"
    ~count:25 arb_config (fun cfg ->
      let img = Lazy.force image in
      let os = Os.create img in
      let hyp = Hyp.attach os in
      let v = View.build ~hyp ~index:1 cfg in
      let loaded = expanded_functions img cfg in
      let in_loaded a =
        List.exists
          (fun (p : Asm.placed) ->
            (* a whole-function load runs to the next prologue, i.e. may
               include the padding after the function *)
            p.Asm.addr <= a
            && a < (p.Asm.addr + p.Asm.size + 15) / 16 * 16)
          loaded
      in
      let ok = ref true in
      let a = ref (Image.text_base img) in
      while !ok && !a < Image.text_end img do
        let got = Option.get (View.read_code v ~gva:!a) in
        (if in_loaded !a then begin
           if got <> Option.get (Image.read_byte img !a) then ok := false
         end
         else
           let want = if !a land 1 = 0 then 0x0f else 0x0b in
           if got <> want then ok := false);
        incr a
      done;
      View.destroy v;
      !ok)

let prop_view_destroy_frees =
  QCheck.Test.make ~name:"view destroy frees exactly its frames" ~count:20
    arb_config (fun cfg ->
      let os = Os.create (Lazy.force image) in
      let hyp = Hyp.attach os in
      let before = Fc_mem.Phys_mem.live_frames (Os.phys os) in
      let v = View.build ~hyp ~index:1 cfg in
      View.destroy v;
      Fc_mem.Phys_mem.live_frames (Os.phys os) = before)

(* ------------------------------------------------------------------ *)
(* Workload fuzzing under enforcement                                  *)
(* ------------------------------------------------------------------ *)

let harmless_variants =
  (* every variant except exit (scripts manage their own exit) *)
  List.filter (fun v -> v <> "exit") Fc_kernel.Syscalls.names

let gen_script =
  let open QCheck.Gen in
  let variants = Array.of_list harmless_variants in
  let* n = int_range 1 25 in
  let* picks = list_repeat n (int_bound (Array.length variants - 1)) in
  return (List.map (fun i -> Action.Syscall variants.(i)) picks @ [ Action.Exit ])

let arb_script =
  QCheck.make gen_script ~print:(fun acts ->
      String.concat ";" (List.map (Format.asprintf "%a" Action.pp) acts))

(* A fixed small profile so the fuzzer exercises recovery heavily. *)
let fuzz_profile =
  lazy
    (Fc_profiler.Profiler.profile_app (Lazy.force image) ~name:"fuzz"
       [ Action.Syscall "getpid"; Action.Syscall "write:tty"; Action.Exit ])

let prop_fuzz_never_panics =
  QCheck.Test.make
    ~name:"random syscall workloads under enforcement: silent recovery, no panic"
    ~count:40 arb_script (fun script ->
      let os = Os.create ~config:Os.runtime_config (Lazy.force image) in
      let hyp = Hyp.attach os in
      let fc = Facechange.enable hyp in
      let (_ : int) = Facechange.load_view fc (Lazy.force fuzz_profile) in
      let p = Os.spawn os ~name:"fuzz" script in
      match Os.run ~max_rounds:10_000 os with
      | () -> Process.is_exited p
      | exception Os.Guest_panic _ -> false)

let prop_fuzz_spans_balanced =
  QCheck.Test.make
    ~name:
      "random workloads under an armed trace: span stream balanced, timeline parses"
    ~count:20 arb_script (fun script ->
      let module Trace = Fc_obs.Trace in
      let module Event = Fc_obs.Event in
      let module Jsonx = Fc_obs.Jsonx in
      let os = Os.create ~config:Os.runtime_config (Lazy.force image) in
      Trace.arm ~capacity:65536 (Fc_obs.Obs.trace (Os.obs os));
      let hyp = Hyp.attach os in
      let fc = Facechange.enable hyp in
      let (_ : int) = Facechange.load_view fc (Lazy.force fuzz_profile) in
      let (_ : Process.t) = Os.spawn os ~name:"fuzz" script in
      (match Os.run ~max_rounds:10_000 os with
      | () -> ()
      | exception Os.Guest_panic _ -> ());
      (* every end closes the innermost open begin on its vCPU, and the
         run leaves nothing open *)
      let stacks : (int, int list) Hashtbl.t = Hashtbl.create 4 in
      let sid_vid : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let balanced = ref true in
      List.iter
        (fun (r : Trace.record) ->
          match r.Trace.event with
          | Event.Span_begin { sid; vid; _ } ->
              Hashtbl.replace sid_vid sid vid;
              Hashtbl.replace stacks vid
                (sid :: Option.value ~default:[] (Hashtbl.find_opt stacks vid))
          | Event.Span_end { sid; _ } -> (
              match Hashtbl.find_opt sid_vid sid with
              | None -> balanced := false
              | Some vid -> (
                  Hashtbl.remove sid_vid sid;
                  match Hashtbl.find_opt stacks vid with
                  | Some (top :: rest) when top = sid ->
                      Hashtbl.replace stacks vid rest
                  | _ -> balanced := false))
          | _ -> ())
        (Trace.records (Fc_obs.Obs.trace (Os.obs os)));
      Hashtbl.iter (fun _ st -> if st <> [] then balanced := false) stacks;
      let timeline_ok =
        Result.is_ok
          (Jsonx.of_string
             (Jsonx.to_string
                (Fc_obs.Export.timeline_to_json
                   (Fc_obs.Obs.trace (Os.obs os)))))
      in
      !balanced && timeline_ok)

let prop_fuzz_recovery_restores_original =
  QCheck.Test.make
    ~name:"after any fuzzed run, active view bytes match original wherever not UD2"
    ~count:15 arb_script (fun script ->
      let img = Lazy.force image in
      let os = Os.create ~config:Os.runtime_config img in
      let hyp = Hyp.attach os in
      let fc = Facechange.enable hyp in
      let idx = Facechange.load_view fc (Lazy.force fuzz_profile) in
      let p = Os.spawn os ~name:"fuzz" script in
      Os.run ~max_rounds:10_000 os;
      ignore (Process.is_exited p);
      let v = Option.get (Facechange.find_view fc idx) in
      (* sample a stride of addresses *)
      let ok = ref true in
      let a = ref (Image.text_base img) in
      while !ok && !a < Image.text_end img do
        (match View.read_code v ~gva:!a with
        | Some b0 ->
            (* every byte is either the UD2 fill byte for its parity or a
               faithful copy of the original code *)
            let fill_byte = if !a land 1 = 0 then 0x0f else 0x0b in
            if b0 <> fill_byte && Some b0 <> Image.read_byte img !a then
              ok := false
        | None -> ok := false);
        a := !a + 237
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Config/profile determinism and persistence                           *)
(* ------------------------------------------------------------------ *)

let prop_view_config_roundtrip =
  QCheck.Test.make ~name:"view-config text roundtrip for random range lists"
    ~count:100 arb_config (fun cfg ->
      match View_config.of_string (View_config.to_string cfg) with
      | Ok cfg' ->
          Range_list.equal cfg.View_config.ranges cfg'.View_config.ranges
          && cfg.View_config.app = cfg'.View_config.app
      | Error _ -> false)

let prop_profiling_deterministic =
  QCheck.Test.make ~name:"profiling the same workload twice yields identical views"
    ~count:8 arb_script (fun script ->
      let p1 = Fc_profiler.Profiler.profile_app (Lazy.force image) ~name:"d" script in
      let p2 = Fc_profiler.Profiler.profile_app (Lazy.force image) ~name:"d" script in
      Range_list.equal p1.View_config.ranges p2.View_config.ranges)

let suites =
  [
    ( "invariants",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_asm_layout;
          prop_asm_decodable;
          prop_asm_yields_even;
          prop_view_contents;
          prop_view_destroy_frees;
          prop_fuzz_never_panics;
          prop_fuzz_spans_balanced;
          prop_fuzz_recovery_restores_original;
          prop_view_config_roundtrip;
          prop_profiling_deterministic;
        ] );
  ]
