(* The observability layer: ring buffer mechanics, the hand-rolled JSON
   codec, golden exporter output, and the invariant that ties it all
   together — event-derived counts equal the Stats.capture projection of
   the metrics registry on a full scheduler run. *)

module Ring = Fc_obs.Ring
module Trace = Fc_obs.Trace
module Event = Fc_obs.Event
module Metrics = Fc_obs.Metrics
module Obs = Fc_obs.Obs
module Jsonx = Fc_obs.Jsonx
module Export = Fc_obs.Export
module Action = Fc_machine.Action
module Process = Fc_machine.Process
module Os = Fc_machine.Os
module Image = Fc_kernel.Image
module Hyp = Fc_hypervisor.Hypervisor
module Profiler = Fc_profiler.Profiler
module Facechange = Fc_core.Facechange
module Stats = Fc_core.Stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let image = lazy (Image.build_exn ())

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)
(* ------------------------------------------------------------------ *)

let test_ring_order () =
  let r = Ring.create ~capacity:4 in
  check_int "empty length" 0 (Ring.length r);
  check_bool "no last" true (Ring.last r = None);
  List.iter (Ring.push r) [ 1; 2; 3 ];
  check_int "length" 3 (Ring.length r);
  check_int "pushed" 3 (Ring.pushed r);
  check_int "dropped" 0 (Ring.dropped r);
  Alcotest.(check (list int)) "oldest first" [ 1; 2; 3 ] (Ring.to_list r);
  check_bool "last" true (Ring.last r = Some 3)

let test_ring_wraparound () =
  let r = Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Ring.push r i
  done;
  check_int "length capped" 4 (Ring.length r);
  check_int "pushed counts everything" 10 (Ring.pushed r);
  check_int "dropped = pushed - held" 6 (Ring.dropped r);
  Alcotest.(check (list int)) "most recent window" [ 7; 8; 9; 10 ]
    (Ring.to_list r);
  let seen = ref [] in
  Ring.iter (fun x -> seen := x :: !seen) r;
  Alcotest.(check (list int)) "iter oldest first" [ 7; 8; 9; 10 ]
    (List.rev !seen)

let test_ring_clear_and_capacity () =
  let r = Ring.create ~capacity:2 in
  List.iter (Ring.push r) [ 1; 2; 3 ];
  Ring.clear r;
  check_int "cleared" 0 (Ring.length r);
  check_int "counters reset" 0 (Ring.pushed r);
  check_int "dropped reset" 0 (Ring.dropped r);
  Ring.push r 9;
  Alcotest.(check (list int)) "usable after clear" [ 9 ] (Ring.to_list r);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Ring.create: capacity must be >= 1") (fun () ->
      ignore (Ring.create ~capacity:0))

(* ------------------------------------------------------------------ *)
(* Jsonx                                                               *)
(* ------------------------------------------------------------------ *)

let test_json_golden () =
  let j =
    Jsonx.Obj
      [
        ("a", Jsonx.Int 1);
        ("b", Jsonx.List [ Jsonx.Bool true; Jsonx.Null ]);
        ("s", Jsonx.String "he\"llo\n");
        ("f", Jsonx.Float 1.5);
      ]
  in
  check_string "compact form"
    "{\"a\":1,\"b\":[true,null],\"s\":\"he\\\"llo\\n\",\"f\":1.5}"
    (Jsonx.to_string j)

let test_json_nonfinite_is_null () =
  check_string "nan" "null" (Jsonx.to_string (Jsonx.Float Float.nan));
  check_string "inf" "null" (Jsonx.to_string (Jsonx.Float Float.infinity));
  check_string "neg inf" "null"
    (Jsonx.to_string (Jsonx.Float Float.neg_infinity));
  (* inside a structure the document must stay valid JSON *)
  let doc = Jsonx.to_string (Jsonx.Obj [ ("x", Jsonx.Float Float.nan) ]) in
  check_string "embedded" "{\"x\":null}" doc;
  check_bool "still parses" true (Result.is_ok (Jsonx.of_string doc))

let test_json_roundtrip () =
  let j =
    Jsonx.Obj
      [
        ("neg", Jsonx.Int (-42));
        ("pi", Jsonx.Float 3.141592653589793);
        ("nested", Jsonx.Obj [ ("l", Jsonx.List [ Jsonx.String "x=y,z" ]) ]);
        ("empty_obj", Jsonx.Obj []);
        ("empty_list", Jsonx.List []);
      ]
  in
  (match Jsonx.of_string (Jsonx.to_string j) with
  | Ok j' -> check_bool "roundtrip" true (j = j')
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e);
  (* pretty form parses back to the same value too *)
  match Jsonx.of_string (Jsonx.to_string ~pretty:true j) with
  | Ok j' -> check_bool "pretty roundtrip" true (j = j')
  | Error e -> Alcotest.failf "pretty parse failed: %s" e

let test_json_parse_escapes () =
  (match Jsonx.of_string "\"\\u0041\\t\\\\\"" with
  | Ok (Jsonx.String s) -> check_string "escapes" "A\t\\" s
  | Ok _ | Error _ -> Alcotest.fail "escape parse failed");
  check_bool "truncated doc rejected" true
    (Result.is_error (Jsonx.of_string "{\"a\": 1"));
  check_bool "trailing garbage rejected" true
    (Result.is_error (Jsonx.of_string "1 2"));
  check_bool "bare word rejected" true (Result.is_error (Jsonx.of_string "nope"))

let test_json_accessors () =
  let j =
    Jsonx.Obj
      [ ("a", Jsonx.Obj [ ("b", Jsonx.Int 7) ]); ("f", Jsonx.Float 2.0) ]
  in
  check_bool "path hit" true (Jsonx.path j [ "a"; "b" ] = Some (Jsonx.Int 7));
  check_bool "path miss" true (Jsonx.path j [ "a"; "zz" ] = None);
  check_bool "int of integral float" true
    (Option.bind (Jsonx.member "f" j) Jsonx.to_int = Some 2)

(* ------------------------------------------------------------------ *)
(* Exporters (golden)                                                  *)
(* ------------------------------------------------------------------ *)

let golden_trace () =
  let t = Trace.create () in
  let now = ref 100 in
  Trace.set_clock t (fun () -> !now);
  Trace.arm ~capacity:8 t;
  Trace.emit t
    (Event.View_switch
       { vid = 0; from_index = 0; to_index = 2; outcome = Event.Switched });
  now := 250;
  Trace.emit t
    (Event.Recovery
       {
         kind = Event.Lazy;
         start = 0x1000;
         stop = 0x1040;
         symbol = "0x1000 <foo>";
       });
  t

let test_export_trace_json_golden () =
  check_string "trace json"
    ("{\"schema_version\":1,\"emitted\":2,\"dropped\":0,\"events\":["
   ^ "{\"seq\":0,\"cycle\":100,\"kind\":\"view_switch\",\"vid\":0,\"from\":0,\"to\":2,\"outcome\":\"switched\"},"
   ^ "{\"seq\":1,\"cycle\":250,\"kind\":\"recovery\",\"recovery\":\"lazy\",\"start\":4096,\"stop\":4160,\"bytes\":64,\"symbol\":\"0x1000 <foo>\"}"
   ^ "]}")
    (Jsonx.to_string (Export.trace_to_json (golden_trace ())))

let test_export_trace_csv_golden () =
  check_string "trace csv"
    ("seq,cycle,kind,args\n"
   ^ "0,100,view_switch,vid=0;from=0;to=2;outcome=switched\n"
   ^ "1,250,recovery,recovery=lazy;start=4096;stop=4160;bytes=64;symbol=0x1000 <foo>\n"
    )
    (Export.trace_to_csv (golden_trace ()))

let golden_metrics () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~subsystem:"fc" "recoveries" in
  Metrics.add c 3;
  Metrics.gauge m ~subsystem:"os" "cycles" (fun () -> 500);
  let h = Metrics.histogram m ~subsystem:"hyp" "charge_cycles" in
  List.iter (Metrics.observe h) [ 1; 2; 300 ];
  m

let test_export_metrics_json_golden () =
  check_string "metrics json"
    ("{\"counters\":{\"fc.recoveries\":3},"
   ^ "\"gauges\":{\"os.cycles\":500},"
   ^ "\"histograms\":{\"hyp.charge_cycles\":{\"count\":3,\"sum\":303,\"max\":300,"
   ^ "\"buckets\":[{\"pow2\":0,\"count\":1},{\"pow2\":1,\"count\":1},{\"pow2\":8,\"count\":1}]}}}"
    )
    (Jsonx.to_string (Export.metrics_to_json (golden_metrics ())))

let test_export_metrics_csv_golden () =
  check_string "metrics csv"
    ("kind,subsystem,name,value,count,sum,max\n"
   ^ "counter,fc,recoveries,3,,,\n" ^ "gauge,os,cycles,500,,,\n"
   ^ "histogram,hyp,charge_cycles,,3,303,300\n")
    (Export.metrics_to_csv (golden_metrics ()))

let test_export_csv_quoting () =
  let t = Trace.create () in
  Trace.arm t;
  Trace.emit t
    (Event.Sched_switch { vid = 0; pid = 7; comm = "a,b\"c" });
  let csv = Export.trace_to_csv t in
  check_string "quoted args" "seq,cycle,kind,args\n0,0,sched_switch,\"vid=0;pid=7;comm=a,b\"\"c\"\n" csv

(* ------------------------------------------------------------------ *)
(* Trace sink mechanics                                                *)
(* ------------------------------------------------------------------ *)

let test_trace_disarmed_records_nothing () =
  let t = Trace.create () in
  check_bool "starts disarmed" false (Trace.armed t);
  Trace.emit t (Event.Frame_share { frame = 1 });
  check_int "nothing recorded" 0 (Trace.emitted t);
  check_bool "no records" true (Trace.records t = []);
  Trace.arm ~capacity:2 t;
  check_bool "armed" true (Trace.armed t);
  List.iter (fun f -> Trace.emit t (Event.Frame_share { frame = f })) [ 1; 2; 3 ];
  check_int "emitted" 3 (Trace.emitted t);
  check_int "ring dropped oldest" 1 (Trace.dropped t);
  Trace.disarm t;
  check_bool "disarmed again" false (Trace.armed t)

let test_trace_subscribers () =
  let t = Trace.create () in
  let seen = ref [] in
  Trace.subscribe t (fun r -> seen := r.Trace.event :: !seen);
  check_bool "subscriber arms the sink" true (Trace.armed t);
  Trace.emit t (Event.Frame_share { frame = 5 });
  check_int "delivered" 1 (List.length !seen);
  check_bool "no ring yet" true (Trace.records t = []);
  Trace.clear_subscribers t;
  check_bool "disarmed after clear" false (Trace.armed t)

(* ------------------------------------------------------------------ *)
(* Events == Stats.capture on a real run                               *)
(* ------------------------------------------------------------------ *)

let toplike_script n =
  Action.repeat n
    [
      Action.Syscall "open:proc";
      Action.Syscall "read:proc:stat";
      Action.Syscall "close";
      Action.Syscall "write:tty";
      Action.Compute 20_000;
    ]
  @ [ Action.Exit ]

let toplike_config =
  lazy
    (Profiler.profile_app (Lazy.force image) ~name:"toplike"
       (toplike_script 24))

let test_events_match_stats () =
  (* the runtime clocksource differs from the profiled one, so the run is
     guaranteed to exercise the UD2 recovery path too *)
  let os = Os.create ~config:Os.runtime_config (Lazy.force image) in
  (* subscribe before anything attaches so every emission is counted *)
  let counts = Hashtbl.create 16 in
  let bump k = Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)) in
  let recovered_bytes = ref 0 in
  Trace.subscribe
    (Obs.trace (Os.obs os))
    (fun r ->
      (match r.Trace.event with
      | Event.View_switch { outcome; _ } ->
          bump ("switch:" ^ Event.outcome_label outcome)
      | Event.Vm_exit { reason; _ } ->
          bump ("exit:" ^ Event.reason_label reason)
      | Event.Recovery { kind; start; stop; _ } ->
          recovered_bytes := !recovered_bytes + (stop - start);
          bump ("recovery:" ^ Event.recovery_label kind)
      | e -> bump (Event.kind e));
      ());
  let hyp = Hyp.attach os in
  let fc = Facechange.enable hyp in
  let (_ : int) = Facechange.load_view fc (Lazy.force toplike_config) in
  let p = Os.spawn os ~name:"toplike" (toplike_script 6) in
  let q =
    Os.spawn os ~name:"idler"
      (Action.repeat 8 [ Action.Compute 5_000 ] @ [ Action.Exit ])
  in
  Os.run os;
  check_bool "both completed" true
    (Process.is_exited p && Process.is_exited q);
  let n k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  let s = Stats.capture fc in
  check_bool "run produced switches" true (s.Stats.view_switches > 0);
  check_bool "run produced recoveries" true (s.Stats.recoveries > 0);
  check_int "switched events" s.Stats.view_switches (n "switch:switched");
  check_int "skipped events" s.Stats.switches_skipped (n "switch:skipped");
  check_int "deferred events" s.Stats.switches_deferred (n "switch:deferred");
  check_int "breakpoint exits" s.Stats.breakpoint_exits (n "exit:breakpoint");
  check_int "invalid opcode exits" s.Stats.invalid_opcode_exits
    (n "exit:invalid_opcode");
  check_int "ud2 traps = handled invalid opcodes" s.Stats.invalid_opcode_exits
    (n "ud2_trap");
  check_int "lazy recoveries" s.Stats.recoveries (n "recovery:lazy");
  check_int "recovered bytes" s.Stats.recovered_bytes !recovered_bytes;
  check_int "cow breaks" s.Stats.cow_breaks (n "cow_break");
  check_int "sched switches" s.Stats.context_switches (n "sched_switch");
  check_int "view loads" s.Stats.views_loaded (n "view_load")

let test_stats_json_valid_and_complete () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable hyp in
  (* empty run: nothing executed, divisions must stay finite *)
  let s = Stats.capture fc in
  check_int "no cycles" 0 s.Stats.guest_cycles;
  Alcotest.(check (float 0.)) "overhead guarded" 0. (Stats.overhead_fraction s);
  let doc = Jsonx.to_string (Stats.to_json s) in
  check_bool "no nan leaks" true (Result.is_ok (Jsonx.of_string doc));
  (* every Stats field appears in the JSON under its own name *)
  match Jsonx.of_string doc with
  | Error e -> Alcotest.failf "stats json: %s" e
  | Ok j ->
      List.iter
        (fun (k, v) ->
          match Option.bind (Jsonx.member k j) Jsonx.to_int with
          | Some jv -> check_int k v jv
          | None -> Alcotest.failf "missing stats field %s" k)
        (Stats.fields s);
      check_bool "overhead present" true
        (Jsonx.member "overhead_fraction" j <> None)

let test_metrics_export_covers_registry () =
  (* the exporters must see exactly what the registry sees, on a guest
     that actually ran *)
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable hyp in
  let (_ : int) = Facechange.load_view fc (Lazy.force toplike_config) in
  let (_ : Process.t) = Os.spawn os ~name:"toplike" (toplike_script 3) in
  Os.run os;
  let m = Obs.metrics (Os.obs os) in
  let j = Export.metrics_to_json m in
  let s = Stats.capture fc in
  let get key =
    match Option.bind (Jsonx.path j [ "counters"; key ]) Jsonx.to_int with
    | Some v -> v
    | None -> (
        match Option.bind (Jsonx.path j [ "gauges"; key ]) Jsonx.to_int with
        | Some v -> v
        | None -> Alcotest.failf "metric %s missing from export" key)
  in
  check_int "fc.view_switches" s.Stats.view_switches (get "fc.view_switches");
  check_int "fc.recoveries" s.Stats.recoveries (get "fc.recoveries");
  check_int "os.cycles" s.Stats.guest_cycles (get "os.cycles");
  check_int "hyp.cycles_charged" s.Stats.hypervisor_cycles
    (get "hyp.cycles_charged");
  check_int "mem gauge tracks phys" (Fc_mem.Phys_mem.live_frames (Os.phys os))
    (get "mem.live_frames")

let suites =
  [
    ( "obs-ring",
      [
        Alcotest.test_case "push order and counters" `Quick test_ring_order;
        Alcotest.test_case "wraparound keeps newest, counts drops" `Quick
          test_ring_wraparound;
        Alcotest.test_case "clear resets; capacity validated" `Quick
          test_ring_clear_and_capacity;
      ] );
    ( "obs-json",
      [
        Alcotest.test_case "golden serialization" `Quick test_json_golden;
        Alcotest.test_case "non-finite floats emit null" `Quick
          test_json_nonfinite_is_null;
        Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "escape parsing and rejects" `Quick
          test_json_parse_escapes;
        Alcotest.test_case "accessors" `Quick test_json_accessors;
      ] );
    ( "obs-export",
      [
        Alcotest.test_case "trace json golden" `Quick
          test_export_trace_json_golden;
        Alcotest.test_case "trace csv golden" `Quick
          test_export_trace_csv_golden;
        Alcotest.test_case "metrics json golden" `Quick
          test_export_metrics_json_golden;
        Alcotest.test_case "metrics csv golden" `Quick
          test_export_metrics_csv_golden;
        Alcotest.test_case "csv quoting" `Quick test_export_csv_quoting;
      ] );
    ( "obs-trace",
      [
        Alcotest.test_case "disarmed sink records nothing" `Quick
          test_trace_disarmed_records_nothing;
        Alcotest.test_case "subscribers arm and receive" `Quick
          test_trace_subscribers;
      ] );
    ( "obs-invariants",
      [
        Alcotest.test_case "events match Stats.capture" `Quick
          test_events_match_stats;
        Alcotest.test_case "stats json is valid and complete" `Quick
          test_stats_json_valid_and_complete;
        Alcotest.test_case "metrics export covers the registry" `Quick
          test_metrics_export_covers_registry;
      ] );
  ]
