(* The observability layer: ring buffer mechanics, the hand-rolled JSON
   codec, golden exporter output, and the invariant that ties it all
   together — event-derived counts equal the Stats.capture projection of
   the metrics registry on a full scheduler run. *)

module Ring = Fc_obs.Ring
module Trace = Fc_obs.Trace
module Event = Fc_obs.Event
module Metrics = Fc_obs.Metrics
module Span = Fc_obs.Span
module Obs = Fc_obs.Obs
module Jsonx = Fc_obs.Jsonx
module Export = Fc_obs.Export
module Action = Fc_machine.Action
module Process = Fc_machine.Process
module Os = Fc_machine.Os
module Image = Fc_kernel.Image
module Hyp = Fc_hypervisor.Hypervisor
module Profiler = Fc_profiler.Profiler
module Facechange = Fc_core.Facechange
module Stats = Fc_core.Stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let image = lazy (Image.build_exn ())

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)
(* ------------------------------------------------------------------ *)

let test_ring_order () =
  let r = Ring.create ~capacity:4 in
  check_int "empty length" 0 (Ring.length r);
  check_bool "no last" true (Ring.last r = None);
  List.iter (Ring.push r) [ 1; 2; 3 ];
  check_int "length" 3 (Ring.length r);
  check_int "pushed" 3 (Ring.pushed r);
  check_int "dropped" 0 (Ring.dropped r);
  Alcotest.(check (list int)) "oldest first" [ 1; 2; 3 ] (Ring.to_list r);
  check_bool "last" true (Ring.last r = Some 3)

let test_ring_wraparound () =
  let r = Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Ring.push r i
  done;
  check_int "length capped" 4 (Ring.length r);
  check_int "pushed counts everything" 10 (Ring.pushed r);
  check_int "dropped = pushed - held" 6 (Ring.dropped r);
  Alcotest.(check (list int)) "most recent window" [ 7; 8; 9; 10 ]
    (Ring.to_list r);
  let seen = ref [] in
  Ring.iter (fun x -> seen := x :: !seen) r;
  Alcotest.(check (list int)) "iter oldest first" [ 7; 8; 9; 10 ]
    (List.rev !seen)

let test_ring_clear_and_capacity () =
  let r = Ring.create ~capacity:2 in
  List.iter (Ring.push r) [ 1; 2; 3 ];
  Ring.clear r;
  check_int "cleared" 0 (Ring.length r);
  check_int "counters reset" 0 (Ring.pushed r);
  check_int "dropped reset" 0 (Ring.dropped r);
  Ring.push r 9;
  Alcotest.(check (list int)) "usable after clear" [ 9 ] (Ring.to_list r);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Ring.create: capacity must be >= 1") (fun () ->
      ignore (Ring.create ~capacity:0))

(* ------------------------------------------------------------------ *)
(* Jsonx                                                               *)
(* ------------------------------------------------------------------ *)

let test_json_golden () =
  let j =
    Jsonx.Obj
      [
        ("a", Jsonx.Int 1);
        ("b", Jsonx.List [ Jsonx.Bool true; Jsonx.Null ]);
        ("s", Jsonx.String "he\"llo\n");
        ("f", Jsonx.Float 1.5);
      ]
  in
  check_string "compact form"
    "{\"a\":1,\"b\":[true,null],\"s\":\"he\\\"llo\\n\",\"f\":1.5}"
    (Jsonx.to_string j)

let test_json_nonfinite_is_null () =
  check_string "nan" "null" (Jsonx.to_string (Jsonx.Float Float.nan));
  check_string "inf" "null" (Jsonx.to_string (Jsonx.Float Float.infinity));
  check_string "neg inf" "null"
    (Jsonx.to_string (Jsonx.Float Float.neg_infinity));
  (* inside a structure the document must stay valid JSON *)
  let doc = Jsonx.to_string (Jsonx.Obj [ ("x", Jsonx.Float Float.nan) ]) in
  check_string "embedded" "{\"x\":null}" doc;
  check_bool "still parses" true (Result.is_ok (Jsonx.of_string doc))

let test_json_roundtrip () =
  let j =
    Jsonx.Obj
      [
        ("neg", Jsonx.Int (-42));
        ("pi", Jsonx.Float 3.141592653589793);
        ("nested", Jsonx.Obj [ ("l", Jsonx.List [ Jsonx.String "x=y,z" ]) ]);
        ("empty_obj", Jsonx.Obj []);
        ("empty_list", Jsonx.List []);
      ]
  in
  (match Jsonx.of_string (Jsonx.to_string j) with
  | Ok j' -> check_bool "roundtrip" true (j = j')
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e);
  (* pretty form parses back to the same value too *)
  match Jsonx.of_string (Jsonx.to_string ~pretty:true j) with
  | Ok j' -> check_bool "pretty roundtrip" true (j = j')
  | Error e -> Alcotest.failf "pretty parse failed: %s" e

let test_json_parse_escapes () =
  (match Jsonx.of_string "\"\\u0041\\t\\\\\"" with
  | Ok (Jsonx.String s) -> check_string "escapes" "A\t\\" s
  | Ok _ | Error _ -> Alcotest.fail "escape parse failed");
  check_bool "truncated doc rejected" true
    (Result.is_error (Jsonx.of_string "{\"a\": 1"));
  check_bool "trailing garbage rejected" true
    (Result.is_error (Jsonx.of_string "1 2"));
  check_bool "bare word rejected" true (Result.is_error (Jsonx.of_string "nope"))

let test_json_accessors () =
  let j =
    Jsonx.Obj
      [ ("a", Jsonx.Obj [ ("b", Jsonx.Int 7) ]); ("f", Jsonx.Float 2.0) ]
  in
  check_bool "path hit" true (Jsonx.path j [ "a"; "b" ] = Some (Jsonx.Int 7));
  check_bool "path miss" true (Jsonx.path j [ "a"; "zz" ] = None);
  check_bool "int of integral float" true
    (Option.bind (Jsonx.member "f" j) Jsonx.to_int = Some 2)

(* ------------------------------------------------------------------ *)
(* Exporters (golden)                                                  *)
(* ------------------------------------------------------------------ *)

let golden_trace () =
  let t = Trace.create () in
  let now = ref 100 in
  Trace.set_clock t (fun () -> !now);
  Trace.arm ~capacity:8 t;
  Trace.emit t
    (Event.View_switch
       { vid = 0; from_index = 0; to_index = 2; outcome = Event.Switched });
  now := 250;
  Trace.emit t
    (Event.Recovery
       {
         kind = Event.Lazy;
         start = 0x1000;
         stop = 0x1040;
         symbol = "0x1000 <foo>";
       });
  t

let test_export_trace_json_golden () =
  check_string "trace json"
    ("{\"schema_version\":1,\"emitted\":2,\"dropped\":0,\"events\":["
   ^ "{\"seq\":0,\"cycle\":100,\"kind\":\"view_switch\",\"vid\":0,\"from\":0,\"to\":2,\"outcome\":\"switched\"},"
   ^ "{\"seq\":1,\"cycle\":250,\"kind\":\"recovery\",\"recovery\":\"lazy\",\"start\":4096,\"stop\":4160,\"bytes\":64,\"symbol\":\"0x1000 <foo>\"}"
   ^ "]}")
    (Jsonx.to_string (Export.trace_to_json (golden_trace ())))

let test_export_trace_csv_golden () =
  check_string "trace csv"
    ("seq,cycle,kind,args\n"
   ^ "0,100,view_switch,vid=0;from=0;to=2;outcome=switched\n"
   ^ "1,250,recovery,recovery=lazy;start=4096;stop=4160;bytes=64;symbol=0x1000 <foo>\n"
    )
    (Export.trace_to_csv (golden_trace ()))

let golden_metrics () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~subsystem:"fc" "recoveries" in
  Metrics.add c 3;
  Metrics.gauge m ~subsystem:"os" "cycles" (fun () -> 500);
  let h = Metrics.histogram m ~subsystem:"hyp" "charge_cycles" in
  List.iter (Metrics.observe h) [ 1; 2; 300 ];
  m

let test_export_metrics_json_golden () =
  (* percentile floats make an exact string golden brittle; compare
     structurally and pin the interpolated values with a tolerance *)
  let j = Export.metrics_to_json (golden_metrics ()) in
  let int_at path =
    match Option.bind (Jsonx.path j path) Jsonx.to_int with
    | Some v -> v
    | None -> Alcotest.failf "missing %s" (String.concat "." path)
  in
  let float_at path =
    match Option.bind (Jsonx.path j path) Jsonx.to_float with
    | Some v -> v
    | None -> Alcotest.failf "missing %s" (String.concat "." path)
  in
  check_int "counter" 3 (int_at [ "counters"; "fc.recoveries" ]);
  check_int "gauge" 500 (int_at [ "gauges"; "os.cycles" ]);
  let h = [ "histograms"; "hyp.charge_cycles" ] in
  check_int "count" 3 (int_at (h @ [ "count" ]));
  check_int "sum" 303 (int_at (h @ [ "sum" ]));
  check_int "max" 300 (int_at (h @ [ "max" ]));
  (* obs [1;2;300]: p50 lands in the [2,4) bucket, p90/p99 in the last
     bucket which is capped at max+1 = [256,301) *)
  Alcotest.(check (float 1e-9)) "p50" 3.0 (float_at (h @ [ "p50" ]));
  Alcotest.(check (float 1e-9)) "p90" 287.5 (float_at (h @ [ "p90" ]));
  Alcotest.(check (float 1e-9)) "p99" 299.65 (float_at (h @ [ "p99" ]));
  (match Jsonx.path j (h @ [ "buckets" ]) with
  | Some (Jsonx.List buckets) ->
      Alcotest.(check (list (pair int int)))
        "buckets"
        [ (0, 1); (1, 1); (8, 1) ]
        (List.map
           (fun b ->
             match
               ( Option.bind (Jsonx.member "pow2" b) Jsonx.to_int,
                 Option.bind (Jsonx.member "count" b) Jsonx.to_int )
             with
             | Some p, Some c -> (p, c)
             | _ -> Alcotest.fail "malformed bucket")
           buckets)
  | _ -> Alcotest.fail "buckets missing");
  check_bool "document parses back" true
    (Result.is_ok (Jsonx.of_string (Jsonx.to_string j)))

let test_export_metrics_csv_golden () =
  check_string "metrics csv"
    ("kind,subsystem,name,label,value,count,sum,max,p50,p90,p99\n"
   ^ "counter,fc,recoveries,,3,,,,,,\n" ^ "gauge,os,cycles,,500,,,,,,\n"
   ^ "histogram,hyp,charge_cycles,,,3,303,300,3,287.5,299.65\n")
    (Export.metrics_to_csv (golden_metrics ()))

let test_metrics_percentiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~subsystem:"t" "lat" in
  for i = 1 to 100 do
    Metrics.observe h i
  done;
  let snap =
    match Metrics.snapshot m with
    | [ { Metrics.value = Metrics.Histogram s; _ } ] -> s
    | _ -> Alcotest.fail "expected one histogram sample"
  in
  (* uniform 1..100: rank 50 sits 19/32 into the [32,64) bucket, rank 90
     and 99 interpolate inside [64,101) (capped at max+1) *)
  Alcotest.(check (float 1e-6)) "p50" 51.0 (Metrics.percentile snap 0.5);
  Alcotest.(check (float 1e-6))
    "p90"
    (64.0 +. ((90.0 -. 63.0) /. 37.0 *. 37.0))
    (Metrics.percentile snap 0.9);
  Alcotest.(check (float 1e-6))
    "p99"
    (64.0 +. ((99.0 -. 63.0) /. 37.0 *. 37.0))
    (Metrics.percentile snap 0.99);
  (* estimates are monotone in q and bounded by the observed range *)
  let p q = Metrics.percentile snap q in
  check_bool "monotone" true (p 0.5 <= p 0.9 && p 0.9 <= p 0.99);
  check_bool "bounded" true (p 0.99 <= 101.0 && p 0.01 >= 0.0);
  (* an empty histogram has no quantiles: nan, never a fake 0 that
     downstream math could mistake for a real observation *)
  Metrics.reset_histogram h;
  let snap' =
    match Metrics.snapshot m with
    | [ { Metrics.value = Metrics.Histogram s; _ } ] -> s
    | _ -> Alcotest.fail "expected one histogram sample"
  in
  check_bool "empty is nan" true (Float.is_nan (Metrics.percentile snap' 0.99))

let test_metrics_labeled_families () =
  let m = Metrics.create () in
  let fam = Metrics.counter_family m ~subsystem:"os" "run_cycles" in
  Metrics.add (Metrics.family_counter fam "top") 10;
  Metrics.add (Metrics.family_counter fam "vim") 5;
  (* find-or-create: same label resolves to the same counter *)
  Metrics.add (Metrics.family_counter fam "top") 7;
  Alcotest.(check (list (pair string int)))
    "labels in registration order"
    [ ("top", 17); ("vim", 5) ]
    (Metrics.labels m "os.run_cycles");
  (* labeled members surface in snapshots under sub.name{label} *)
  let keys =
    List.map
      (fun (s : Metrics.sample) ->
        (s.Metrics.subsystem ^ "." ^ s.Metrics.name, s.Metrics.label))
      (Metrics.snapshot m)
  in
  check_bool "labeled sample present" true
    (List.mem ("os.run_cycles", Some "top") keys);
  Metrics.reset_family fam;
  Alcotest.(check (list (pair string int)))
    "reset keeps members, zeroes values"
    [ ("top", 0); ("vim", 0) ]
    (Metrics.labels m "os.run_cycles")

let test_export_csv_quoting () =
  let t = Trace.create () in
  Trace.arm t;
  Trace.emit t
    (Event.Sched_switch { vid = 0; pid = 7; comm = "a,b\"c" });
  let csv = Export.trace_to_csv t in
  check_string "quoted args" "seq,cycle,kind,args\n0,0,sched_switch,\"vid=0;pid=7;comm=a,b\"\"c\"\n" csv

(* ------------------------------------------------------------------ *)
(* Span tracker                                                        *)
(* ------------------------------------------------------------------ *)

let span_events sink =
  List.filter_map
    (fun (r : Trace.record) ->
      match r.Trace.event with
      | (Event.Span_begin _ | Event.Span_end _) as e -> Some e
      | _ -> None)
    (Trace.records sink)

let test_span_disarmed_is_free () =
  let sink = Trace.create () in
  let sp = Span.create sink in
  let sid = Span.enter sp Span.Recovery in
  check_bool "disarmed enter returns none" true (sid = Span.none);
  Span.exit sp sid;
  check_int "nothing emitted" 0 (Trace.emitted sink);
  check_int "no open spans" 0 (Span.depth sp ())

let test_span_balanced_nesting () =
  let sink = Trace.create () in
  Trace.arm ~capacity:16 sink;
  let sp = Span.create sink in
  let outer = Span.enter sp ~vid:0 ~pid:7 ~comm:"top" Span.Exit_handling in
  let inner = Span.enter sp ~vid:0 ~pid:7 ~comm:"top" Span.Backtrace in
  check_int "two open" 2 (Span.depth sp ());
  Span.exit sp inner;
  Span.exit sp outer;
  check_int "all closed" 0 (Span.depth sp ());
  match span_events sink with
  | [
   Event.Span_begin { sid = b1; parent = p1; span = "exit_handling"; _ };
   Event.Span_begin { sid = b2; parent = p2; span = "backtrace"; _ };
   Event.Span_end { sid = e1; _ };
   Event.Span_end { sid = e2; _ };
  ] ->
      check_bool "inner parented on outer" true (p2 = b1 && p1 = Span.none);
      check_bool "LIFO close order" true (e1 = b2 && e2 = b1)
  | evs -> Alcotest.failf "unexpected stream (%d events)" (List.length evs)

let test_span_exit_autocloses_children () =
  let sink = Trace.create () in
  Trace.arm ~capacity:16 sink;
  let sp = Span.create sink in
  let outer = Span.enter sp Span.Run_slice in
  let _inner = Span.enter sp Span.Exit_handling in
  let _innermost = Span.enter sp Span.Backtrace in
  (* closing the root must pop the two children first so the event
     stream stays well-nested for any trace viewer *)
  Span.exit sp outer;
  check_int "stack drained" 0 (Span.depth sp ());
  let ends =
    List.filter_map
      (function Event.Span_end { span; _ } -> Some span | _ -> None)
      (span_events sink)
  in
  Alcotest.(check (list string))
    "children closed innermost-first"
    [ "backtrace"; "exit_handling"; "run_slice" ]
    ends;
  (* spans on different vCPUs keep independent stacks *)
  let a = Span.enter sp ~vid:0 Span.Run_slice in
  let _b = Span.enter sp ~vid:1 Span.Run_slice in
  Span.exit sp a;
  check_int "vid 1 untouched" 1 (Span.depth sp ~vid:1 ());
  check_int "vid 0 drained" 0 (Span.depth sp ~vid:0 ())

(* ------------------------------------------------------------------ *)
(* Trace sink mechanics                                                *)
(* ------------------------------------------------------------------ *)

let test_trace_disarmed_records_nothing () =
  let t = Trace.create () in
  check_bool "starts disarmed" false (Trace.armed t);
  Trace.emit t (Event.Frame_share { frame = 1 });
  check_int "nothing recorded" 0 (Trace.emitted t);
  check_bool "no records" true (Trace.records t = []);
  Trace.arm ~capacity:2 t;
  check_bool "armed" true (Trace.armed t);
  List.iter (fun f -> Trace.emit t (Event.Frame_share { frame = f })) [ 1; 2; 3 ];
  check_int "emitted" 3 (Trace.emitted t);
  check_int "ring dropped oldest" 1 (Trace.dropped t);
  Trace.disarm t;
  check_bool "disarmed again" false (Trace.armed t)

let test_trace_subscribers () =
  let t = Trace.create () in
  let seen = ref [] in
  Trace.subscribe t (fun r -> seen := r.Trace.event :: !seen);
  check_bool "subscriber arms the sink" true (Trace.armed t);
  Trace.emit t (Event.Frame_share { frame = 5 });
  check_int "delivered" 1 (List.length !seen);
  check_bool "no ring yet" true (Trace.records t = []);
  Trace.clear_subscribers t;
  check_bool "disarmed after clear" false (Trace.armed t)

(* ------------------------------------------------------------------ *)
(* Events == Stats.capture on a real run                               *)
(* ------------------------------------------------------------------ *)

let toplike_script n =
  Action.repeat n
    [
      Action.Syscall "open:proc";
      Action.Syscall "read:proc:stat";
      Action.Syscall "close";
      Action.Syscall "write:tty";
      Action.Compute 20_000;
    ]
  @ [ Action.Exit ]

let toplike_config =
  lazy
    (Profiler.profile_app (Lazy.force image) ~name:"toplike"
       (toplike_script 24))

let test_events_match_stats () =
  (* the runtime clocksource differs from the profiled one, so the run is
     guaranteed to exercise the UD2 recovery path too *)
  let os = Os.create ~config:Os.runtime_config (Lazy.force image) in
  (* subscribe before anything attaches so every emission is counted *)
  let counts = Hashtbl.create 16 in
  let bump k = Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)) in
  let recovered_bytes = ref 0 in
  Trace.subscribe
    (Obs.trace (Os.obs os))
    (fun r ->
      (match r.Trace.event with
      | Event.View_switch { outcome; _ } ->
          bump ("switch:" ^ Event.outcome_label outcome)
      | Event.Vm_exit { reason; _ } ->
          bump ("exit:" ^ Event.reason_label reason)
      | Event.Recovery { kind; start; stop; _ } ->
          recovered_bytes := !recovered_bytes + (stop - start);
          bump ("recovery:" ^ Event.recovery_label kind)
      | e -> bump (Event.kind e));
      ());
  let hyp = Hyp.attach os in
  let fc = Facechange.enable hyp in
  let (_ : int) = Facechange.load_view fc (Lazy.force toplike_config) in
  let p = Os.spawn os ~name:"toplike" (toplike_script 6) in
  let q =
    Os.spawn os ~name:"idler"
      (Action.repeat 8 [ Action.Compute 5_000 ] @ [ Action.Exit ])
  in
  Os.run os;
  check_bool "both completed" true
    (Process.is_exited p && Process.is_exited q);
  let n k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  let s = Stats.capture fc in
  check_bool "run produced switches" true (s.Stats.view_switches > 0);
  check_bool "run produced recoveries" true (s.Stats.recoveries > 0);
  check_int "switched events" s.Stats.view_switches (n "switch:switched");
  check_int "skipped events" s.Stats.switches_skipped (n "switch:skipped");
  check_int "deferred events" s.Stats.switches_deferred (n "switch:deferred");
  check_int "breakpoint exits" s.Stats.breakpoint_exits (n "exit:breakpoint");
  check_int "invalid opcode exits" s.Stats.invalid_opcode_exits
    (n "exit:invalid_opcode");
  check_int "ud2 traps = handled invalid opcodes" s.Stats.invalid_opcode_exits
    (n "ud2_trap");
  check_int "lazy recoveries" s.Stats.recoveries (n "recovery:lazy");
  check_int "recovered bytes" s.Stats.recovered_bytes !recovered_bytes;
  check_int "cow breaks" s.Stats.cow_breaks (n "cow_break");
  check_int "sched switches" s.Stats.context_switches (n "sched_switch");
  check_int "view loads" s.Stats.views_loaded (n "view_load")

let test_stats_json_valid_and_complete () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable hyp in
  (* empty run: nothing executed, divisions must stay finite *)
  let s = Stats.capture fc in
  check_int "no cycles" 0 s.Stats.guest_cycles;
  Alcotest.(check (float 0.)) "overhead guarded" 0. (Stats.overhead_fraction s);
  let doc = Jsonx.to_string (Stats.to_json s) in
  check_bool "no nan leaks" true (Result.is_ok (Jsonx.of_string doc));
  (* every Stats field appears in the JSON under its own name *)
  match Jsonx.of_string doc with
  | Error e -> Alcotest.failf "stats json: %s" e
  | Ok j ->
      List.iter
        (fun (k, v) ->
          match Option.bind (Jsonx.member k j) Jsonx.to_int with
          | Some jv -> check_int k v jv
          | None -> Alcotest.failf "missing stats field %s" k)
        (Stats.fields s);
      check_bool "overhead present" true
        (Jsonx.member "overhead_fraction" j <> None)

let test_metrics_export_covers_registry () =
  (* the exporters must see exactly what the registry sees, on a guest
     that actually ran *)
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable hyp in
  let (_ : int) = Facechange.load_view fc (Lazy.force toplike_config) in
  let (_ : Process.t) = Os.spawn os ~name:"toplike" (toplike_script 3) in
  Os.run os;
  let m = Obs.metrics (Os.obs os) in
  let j = Export.metrics_to_json m in
  let s = Stats.capture fc in
  let get key =
    match Option.bind (Jsonx.path j [ "counters"; key ]) Jsonx.to_int with
    | Some v -> v
    | None -> (
        match Option.bind (Jsonx.path j [ "gauges"; key ]) Jsonx.to_int with
        | Some v -> v
        | None -> Alcotest.failf "metric %s missing from export" key)
  in
  check_int "fc.view_switches" s.Stats.view_switches (get "fc.view_switches");
  check_int "fc.recoveries" s.Stats.recoveries (get "fc.recoveries");
  check_int "os.cycles" s.Stats.guest_cycles (get "os.cycles");
  check_int "hyp.cycles_charged" s.Stats.hypervisor_cycles
    (get "hyp.cycles_charged");
  check_int "mem gauge tracks phys" (Fc_mem.Phys_mem.live_frames (Os.phys os))
    (get "mem.live_frames")

(* ------------------------------------------------------------------ *)
(* Timeline on a real run                                              *)
(* ------------------------------------------------------------------ *)

let test_timeline_full_run () =
  let os = Os.create ~config:Os.runtime_config (Lazy.force image) in
  (* arm before attach so view-build spans are captured too *)
  Trace.arm ~capacity:65536 (Obs.trace (Os.obs os));
  let hyp = Hyp.attach os in
  let fc = Facechange.enable hyp in
  let (_ : int) = Facechange.load_view fc (Lazy.force toplike_config) in
  let (_ : Process.t) = Os.spawn os ~name:"toplike" (toplike_script 6) in
  let (_ : Process.t) =
    Os.spawn os ~name:"idler"
      (Action.repeat 8 [ Action.Compute 5_000 ] @ [ Action.Exit ])
  in
  Os.run os;
  let stats = Stats.capture fc in
  (* raw stream invariants: every Span_end matches an open Span_begin,
     closes are LIFO per vCPU, and a begin's parent is the stack top *)
  let open_spans : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let stacks : (int, int list) Hashtbl.t = Hashtbl.create 4 in
  let begins = ref 0 in
  List.iter
    (fun (r : Trace.record) ->
      match r.Trace.event with
      | Event.Span_begin { sid; parent; vid; _ } ->
          incr begins;
          let st = Option.value ~default:[] (Hashtbl.find_opt stacks vid) in
          check_int "parent is enclosing span"
            (match st with top :: _ -> top | [] -> 0)
            parent;
          Hashtbl.replace stacks vid (sid :: st);
          Hashtbl.replace open_spans sid vid
      | Event.Span_end { sid; _ } -> (
          match Hashtbl.find_opt open_spans sid with
          | None -> Alcotest.failf "span end %d without an open begin" sid
          | Some vid -> (
              Hashtbl.remove open_spans sid;
              match Hashtbl.find_opt stacks vid with
              | Some (top :: rest) when top = sid ->
                  Hashtbl.replace stacks vid rest
              | _ -> Alcotest.failf "span %d closed out of LIFO order" sid))
      | _ -> ())
    (Trace.records (Obs.trace (Os.obs os)));
  check_bool "run produced spans" true (!begins > 0);
  check_int "every span closed by run end" 0 (Hashtbl.length open_spans);
  (* the exported timeline round-trips through the JSON parser *)
  let doc =
    Jsonx.to_string ~pretty:true
      (Export.timeline_to_json
         ~extra:[ ("stats", Stats.to_json stats) ]
         (Obs.trace (Os.obs os)))
  in
  match Jsonx.of_string doc with
  | Error e -> Alcotest.failf "timeline does not parse: %s" e
  | Ok j ->
      (match Jsonx.path j [ "traceEvents" ] with
      | Some (Jsonx.List evs) ->
          check_bool "timeline has events" true (evs <> [])
      | _ -> Alcotest.fail "traceEvents missing");
      (* per-app attribution sums to the globals in the same snapshot *)
      let apps =
        match Jsonx.path j [ "stats"; "per_app" ] with
        | Some (Jsonx.Obj apps) -> apps
        | _ -> Alcotest.fail "stats.per_app missing"
      in
      check_bool "both apps attributed" true
        (List.mem_assoc "toplike" apps && List.mem_assoc "idler" apps);
      let sum field =
        List.fold_left
          (fun acc (_, a) ->
            acc
            + Option.value ~default:0
                (Option.bind (Jsonx.path a [ field ]) Jsonx.to_int))
          0 apps
      in
      check_int "per-app switches sum to global" stats.Stats.view_switches
        (sum "view_switches");
      check_int "per-app recoveries sum to global" stats.Stats.recoveries
        (sum "recoveries");
      check_int "per-app recovered bytes sum to global"
        stats.Stats.recovered_bytes (sum "recovered_bytes");
      check_int "per-app charged cycles sum to global"
        stats.Stats.hypervisor_cycles (sum "cycles_charged");
      check_int "per-app run cycles sum to guest cycles"
        stats.Stats.guest_cycles (sum "run_cycles")

(* ------------------------------------------------------------------ *)
(* Recovery log JSON                                                   *)
(* ------------------------------------------------------------------ *)

let test_recovery_log_json () =
  let module Rl = Fc_core.Recovery_log in
  let log = Rl.create () in
  Rl.add log
    {
      Rl.cycle = 42;
      pid = 7;
      comm = "top";
      view_app = "top";
      fault_addr = 0x1000;
      recovered = [ (0x1000, 0x1040, "0x1000 <foo+0x0>") ];
      instant = [];
      backtrace =
        [
          { Rl.addr = 0x1000; rendered = "0x1000 <foo+0x0>"; view_bytes = [ 0xf; 0xb ] };
          { Rl.addr = 0x2000; rendered = "0x2000 <bar+0x8>"; view_bytes = [] };
        ];
      interrupt_context = false;
      unknown_frames = true;
    };
  let doc = Jsonx.to_string ~pretty:true (Rl.to_json log) in
  match Jsonx.of_string doc with
  | Error e -> Alcotest.failf "recovery log json: %s" e
  | Ok j ->
      check_bool "count" true (Jsonx.path j [ "count" ] = Some (Jsonx.Int 1));
      let e =
        match Jsonx.path j [ "entries" ] with
        | Some (Jsonx.List [ e ]) -> e
        | _ -> Alcotest.fail "expected one entry"
      in
      check_bool "cycle" true (Jsonx.path e [ "cycle" ] = Some (Jsonx.Int 42));
      check_bool "flags survive" true
        (Jsonx.path e [ "unknown_frames" ] = Some (Jsonx.Bool true)
        && Jsonx.path e [ "interrupt_context" ] = Some (Jsonx.Bool false));
      (match Jsonx.path e [ "recovered" ] with
      | Some (Jsonx.List [ r ]) ->
          check_bool "recovered bytes derived" true
            (Jsonx.path r [ "bytes" ] = Some (Jsonx.Int 0x40))
      | _ -> Alcotest.fail "recovered range missing");
      (* callers = backtrace minus the faulting head frame *)
      let entry = List.hd (Rl.entries log) in
      Alcotest.(check (list string))
        "callers drop the head"
        [ "0x2000 <bar+0x8>" ]
        (List.map (fun f -> f.Rl.rendered) (Rl.callers entry))

let suites =
  [
    ( "obs-ring",
      [
        Alcotest.test_case "push order and counters" `Quick test_ring_order;
        Alcotest.test_case "wraparound keeps newest, counts drops" `Quick
          test_ring_wraparound;
        Alcotest.test_case "clear resets; capacity validated" `Quick
          test_ring_clear_and_capacity;
      ] );
    ( "obs-json",
      [
        Alcotest.test_case "golden serialization" `Quick test_json_golden;
        Alcotest.test_case "non-finite floats emit null" `Quick
          test_json_nonfinite_is_null;
        Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "escape parsing and rejects" `Quick
          test_json_parse_escapes;
        Alcotest.test_case "accessors" `Quick test_json_accessors;
      ] );
    ( "obs-export",
      [
        Alcotest.test_case "trace json golden" `Quick
          test_export_trace_json_golden;
        Alcotest.test_case "trace csv golden" `Quick
          test_export_trace_csv_golden;
        Alcotest.test_case "metrics json golden" `Quick
          test_export_metrics_json_golden;
        Alcotest.test_case "metrics csv golden" `Quick
          test_export_metrics_csv_golden;
        Alcotest.test_case "csv quoting" `Quick test_export_csv_quoting;
      ] );
    ( "obs-metrics",
      [
        Alcotest.test_case "histogram percentiles" `Quick
          test_metrics_percentiles;
        Alcotest.test_case "labeled families" `Quick
          test_metrics_labeled_families;
      ] );
    ( "obs-span",
      [
        Alcotest.test_case "disarmed enter is free" `Quick
          test_span_disarmed_is_free;
        Alcotest.test_case "balanced nesting" `Quick test_span_balanced_nesting;
        Alcotest.test_case "exit auto-closes children" `Quick
          test_span_exit_autocloses_children;
      ] );
    ( "obs-trace",
      [
        Alcotest.test_case "disarmed sink records nothing" `Quick
          test_trace_disarmed_records_nothing;
        Alcotest.test_case "subscribers arm and receive" `Quick
          test_trace_subscribers;
      ] );
    ( "obs-invariants",
      [
        Alcotest.test_case "events match Stats.capture" `Quick
          test_events_match_stats;
        Alcotest.test_case "stats json is valid and complete" `Quick
          test_stats_json_valid_and_complete;
        Alcotest.test_case "metrics export covers the registry" `Quick
          test_metrics_export_covers_registry;
        Alcotest.test_case "timeline spans balance on a full run" `Quick
          test_timeline_full_run;
        Alcotest.test_case "recovery log json" `Quick test_recovery_log_json;
      ] );
  ]
