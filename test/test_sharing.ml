(* Frame sharing across views: intern identical pages, copy-on-write on
   first write, and — above all — strict behavior invisibility: the
   guest must not be able to tell whether sharing is on. *)

module Action = Fc_machine.Action
module Process = Fc_machine.Process
module Os = Fc_machine.Os
module Image = Fc_kernel.Image
module Hyp = Fc_hypervisor.Hypervisor
module Phys = Fc_mem.Phys_mem
module Frame_cache = Fc_mem.Frame_cache
module Profiler = Fc_profiler.Profiler
module View_config = Fc_profiler.View_config
module View = Fc_core.View
module Facechange = Fc_core.Facechange
module Recovery_log = Fc_core.Recovery_log

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let image = lazy (Image.build_exn ())

let toplike_script n =
  Action.repeat n
    [
      Action.Syscall "open:proc";
      Action.Syscall "read:proc:stat";
      Action.Syscall "read:proc:pid";
      Action.Syscall "close";
      Action.Syscall "write:tty";
      Action.Compute 2_000;
    ]
  @ [ Action.Exit ]

let pipeish_script n =
  [ Action.Syscall "pipe" ]
  @ Action.repeat n
      [ Action.Syscall "write:pipe"; Action.Syscall "read:pipe";
        Action.Compute 1_000 ]
  @ [ Action.Exit ]

let toplike_config =
  lazy (Profiler.profile_app (Lazy.force image) ~name:"toplike" (toplike_script 24))

let pipeish_config =
  lazy (Profiler.profile_app (Lazy.force image) ~name:"pipeish" (pipeish_script 24))

(* ------------------------------------------------------------------ *)
(* Direct sharing mechanics                                            *)
(* ------------------------------------------------------------------ *)

let test_identical_views_share_frames () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let baseline = Phys.live_frames (Os.phys os) in
  let cfg = Lazy.force toplike_config in
  let v1 = View.build ~hyp ~index:1 cfg in
  (* within one view, all pure-UD2 fill pages collapse onto one frame *)
  check_bool "intra-view dedup" true
    (View.frame_count v1 < View.private_page_count v1);
  let before_v2 = Phys.live_frames (Os.phys os) in
  let v2 = View.build ~hyp ~index:2 cfg in
  check_int "second identical view costs zero frames" 0
    (Phys.live_frames (Os.phys os) - before_v2);
  check_int "all of its pages are shared" (View.private_page_count v2)
    (View.shared_page_count v2);
  check_bool "cache hits recorded" true (Frame_cache.hits (Hyp.frame_cache hyp) > 0);
  View.destroy v2;
  View.destroy v1;
  check_int "destroy restores the frame pool exactly" baseline
    (Phys.live_frames (Os.phys os))

let test_shared_and_private_builds_byte_identical () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let cfg = Lazy.force toplike_config in
  let vs = View.build ~hyp ~index:1 cfg in
  let vp = View.build ~hyp ~share_frames:false ~index:2 cfg in
  check_int "private build shares nothing" (View.private_page_count vp)
    (View.frame_count vp);
  check_int "same pages either way" (View.private_page_count vs)
    (View.private_page_count vp);
  check_int "same loaded bytes either way" (View.loaded_bytes vs)
    (View.loaded_bytes vp);
  let img = Lazy.force image in
  List.iter
    (fun name ->
      let a = Image.addr_of_exn img name in
      for i = 0 to 63 do
        if View.read_code vs ~gva:(a + i) <> View.read_code vp ~gva:(a + i) then
          Alcotest.failf "content differs at %s+%d" name i
      done)
    [ "sys_getpid"; "udp_recvmsg"; "schedule"; "tty_write"; "pipe_poll" ];
  View.destroy vp;
  View.destroy vs

(* ------------------------------------------------------------------ *)
(* Randomized scheduler stress: active code always matches the         *)
(* selected view, and every counter is identical sharing on vs off     *)
(* ------------------------------------------------------------------ *)

let random_script rng =
  let n = 4 + Random.State.int rng 8 in
  List.concat
    (List.init n (fun _ ->
         match Random.State.int rng 8 with
         | 0 -> [ Action.Syscall "getpid" ]
         | 1 -> [ Action.Syscall "getuid" ]
         | 2 ->
             [ Action.Syscall "open:proc"; Action.Syscall "read:proc:stat";
               Action.Syscall "close" ]
         | 3 -> [ Action.Syscall "write:tty" ]
         | 4 -> [ Action.Compute (500 + Random.State.int rng 5_000) ]
         | 5 -> [ Action.Sleep (10 + Random.State.int rng 100) ]
         | _ -> [ Action.Syscall "read:proc:pid" ]))
  @ [ Action.Exit ]

type outcome = {
  o_recoveries : int;
  o_recovered_bytes : int;
  o_switches : int;
  o_names : string list;
}

let stress_run ~share scripts =
  let os = Os.create ~config:Os.runtime_config (Lazy.force image) in
  let hyp = Hyp.attach os in
  let opts = { Facechange.default_opts with share_frames = share } in
  let fc = Facechange.enable ~opts hyp in
  let (_ : int) = Facechange.load_view fc (Lazy.force toplike_config) in
  let (_ : int) = Facechange.load_view fc (Lazy.force pipeish_config) in
  let procs =
    List.mapi
      (fun i script ->
        let name =
          match i mod 3 with 0 -> "toplike" | 1 -> "pipeish" | _ -> "unbound"
        in
        Os.spawn os ~name script)
      scripts
  in
  let img = Lazy.force image in
  let probes =
    List.map (Image.addr_of_exn img)
      [ "sys_getpid"; "udp_recvmsg"; "pipe_poll"; "schedule"; "tty_write" ]
  in
  (* the invariant: what the vCPU would fetch is exactly what the
     selected view says, at every scheduling point we get to observe *)
  let check_active_code () =
    let vid = Os.active_vcpu_id os in
    let idx = Facechange.active_index ~vid fc in
    List.iter
      (fun gva ->
        let expected =
          if idx = Facechange.full_view_index then Hyp.read_original_code hyp gva
          else
            match Facechange.find_view fc idx with
            | Some v -> View.read_code v ~gva
            | None -> Alcotest.fail "active view disappeared"
        in
        if Hyp.read_active_code hyp gva <> expected then
          Alcotest.failf "active code mismatch at 0x%x under view %d" gva idx)
      probes
  in
  Os.run
    ~until:(fun _ ->
      check_active_code ();
      List.for_all Process.is_exited procs)
    os;
  check_active_code ();
  List.iter
    (fun p -> check_bool "process completed" true (Process.is_exited p))
    procs;
  {
    o_recoveries = Facechange.recoveries fc;
    o_recovered_bytes = Facechange.recovered_bytes fc;
    o_switches = Facechange.switches fc;
    o_names = Recovery_log.recovered_names (Facechange.log fc);
  }

let test_stress_parity () =
  List.iter
    (fun seed ->
      let rng = Random.State.make [| 0x5EED; seed |] in
      let scripts = List.init 5 (fun _ -> random_script rng) in
      let on = stress_run ~share:true scripts in
      let off = stress_run ~share:false scripts in
      check_int "recoveries identical" off.o_recoveries on.o_recoveries;
      check_int "recovered bytes identical" off.o_recovered_bytes
        on.o_recovered_bytes;
      check_int "switches identical" off.o_switches on.o_switches;
      Alcotest.(check (list string))
        "recovery sequence identical" off.o_names on.o_names;
      check_bool "workload actually recovered something" true
        (on.o_recoveries > 0))
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Regressions                                                         *)
(* ------------------------------------------------------------------ *)

(* Cross-view instant recovery (the odd 0x0b 0x0f boundary) writing into
   a page whose frame is shared with a sibling view: the write must
   break the frame out of sharing, and the sibling must keep its UD2
   fill. *)
let test_instant_recovery_cow_break () =
  let os =
    Os.create
      ~config:{ Os.profiling_config with wake_delay = 3 }
      (Lazy.force image)
  in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable hyp in
  let cfg = Lazy.force toplike_config in
  let sibling = View_config.make ~app:"sibling" cfg.View_config.ranges in
  let i_sib = Facechange.load_view fc sibling in
  let p =
    Os.spawn os ~name:"toplike"
      [
        Action.Syscall "getpid";
        Action.Syscall "poll:pipe" (* blocks inside pipe_poll *);
        Action.Syscall "getpid";
        Action.Exit;
      ]
  in
  (* hot-plug the toplike view while the process is blocked mid-kernel:
     resuming faults inside pipe_poll, and sys_poll's odd return address
     triggers instant recovery *)
  Os.schedule_at_round os 2 (fun _ ->
      let (_ : int) = Facechange.load_view fc cfg in
      ());
  Os.run os;
  check_bool "completed" true (Process.is_exited p);
  let view_of idx =
    match Facechange.find_view fc idx with
    | Some v -> v
    | None -> Alcotest.fail "view disappeared"
  in
  let v_top = view_of (Facechange.selector fc ~comm:"toplike") in
  let v_sib = view_of i_sib in
  check_bool "recovery broke shared frames" true (View.cow_breaks v_top > 0);
  let img = Lazy.force image in
  let sys_poll = Image.addr_of_exn img "sys_poll" in
  let pipe_poll = Image.addr_of_exn img "pipe_poll" in
  check_bool "instant recovery filled sys_poll in the faulting view" true
    (View.read_code v_top ~gva:sys_poll = Some 0x55);
  check_bool "lazy recovery filled pipe_poll in the faulting view" true
    (View.read_code v_top ~gva:pipe_poll = Some 0x55);
  (* the sibling shared those frames; it must be untouched *)
  check_bool "sibling still UD2 at sys_poll" true
    (View.read_code v_sib ~gva:sys_poll = Some 0x0f);
  check_bool "sibling still UD2 at pipe_poll" true
    (View.read_code v_sib ~gva:pipe_poll = Some 0x0f)

(* Unloading a view out from under a running process: it falls back to
   the full view and keeps running, and unloading both views returns the
   frame pool to its exact pre-load level — shared refcounts leak
   nothing. *)
let test_unload_while_active_no_leaks () =
  let os = Os.create ~config:Os.runtime_config (Lazy.force image) in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable hyp in
  (* spawn first: the guest allocates the process' own RAM frames, which
     legitimately outlive it — the leak check is about view frames only *)
  let p = Os.spawn os ~name:"toplike" (toplike_script 8) in
  let baseline = Phys.live_frames (Os.phys os) in
  let cfg = Lazy.force toplike_config in
  let sibling = View_config.make ~app:"sibling" cfg.View_config.ranges in
  let i_top = Facechange.load_view fc cfg in
  let i_sib = Facechange.load_view fc sibling in
  check_bool "the two views share frames" true (Facechange.shared_frames fc > 0);
  Os.schedule_at_round os 6 (fun _ -> Facechange.unload_view fc i_top);
  Os.run os;
  check_bool "completed under the full view" true (Process.is_exited p);
  check_int "selector fell back to full" Facechange.full_view_index
    (Facechange.selector fc ~comm:"toplike");
  Facechange.unload_view fc i_sib;
  check_int "no leaked frames" baseline (Phys.live_frames (Os.phys os));
  Facechange.disable fc;
  check_int "still none after disable" baseline (Phys.live_frames (Os.phys os))

let tc name f = Alcotest.test_case name `Quick f
let tc_slow name f = Alcotest.test_case name `Slow f

let suites =
  [
    ( "sharing",
      [
        tc "identical views share frames; destroy restores pool"
          test_identical_views_share_frames;
        tc "shared and private builds are byte-identical"
          test_shared_and_private_builds_byte_identical;
        tc_slow "random scheduler stress: sharing on/off parity"
          test_stress_parity;
        tc_slow "instant recovery on a shared page breaks CoW, not the sibling"
          test_instant_recovery_cow_break;
        tc_slow "unload-while-active leaks no refcounts"
          test_unload_while_active_no_leaks;
      ] );
  ]
