(* The fault-injection subsystem and the recovery-storm governor:
   deterministic plans, defensive backtraces, config validation, and the
   end-to-end survival property the chaos matrix pins. *)

module Os = Fc_machine.Os
module Action = Fc_machine.Action
module Hyp = Fc_hypervisor.Hypervisor
module Layout = Fc_kernel.Layout
module Image = Fc_kernel.Image
module Facechange = Fc_core.Facechange
module Governor = Fc_core.Governor
module View_config = Fc_profiler.View_config
module App = Fc_apps.App
module Profiles = Fc_benchkit.Profiles
module Chaos = Fc_benchkit.Chaos
module Frand = Fc_faults.Frand
module Fault = Fc_faults.Fault
module Injector = Fc_faults.Injector

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let profiles () = Lazy.force Test_env.profiles

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---------------- seeded randomness ---------------- *)

let test_frand_deterministic () =
  let a = Frand.create 42 and b = Frand.create 42 in
  for _ = 1 to 50 do
    check_int "same seed, same stream" (Frand.int a 1_000_000)
      (Frand.int b 1_000_000)
  done;
  let c = Frand.create 43 in
  let differs = ref false in
  let a = Frand.create 42 in
  for _ = 1 to 50 do
    if Frand.int a 1_000_000 <> Frand.int c 1_000_000 then differs := true
  done;
  check_bool "different seeds diverge" true !differs

let test_fault_gen_deterministic () =
  let p1 = Fault.gen ~seed:7 ~rounds:100 ~n:12 in
  let p2 = Fault.gen ~seed:7 ~rounds:100 ~n:12 in
  check_bool "same seed, same plan" true (p1 = p2);
  check_int "n faults" 12 (List.length p1.Fault.faults);
  List.iter
    (fun (e : Fault.event) ->
      check_bool "round in range" true (e.Fault.at_round >= 2 && e.Fault.at_round < 100))
    p1.Fault.faults;
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Fault.at_round <= b.Fault.at_round && sorted rest
    | _ -> true
  in
  check_bool "sorted by round" true (sorted p1.Fault.faults);
  let p3 = Fault.gen ~seed:8 ~rounds:100 ~n:12 in
  check_bool "different seeds, different plans" true (p1 <> p3)

(* ---------------- view-config validation ---------------- *)

let expect_reject name text needle =
  match View_config.of_string text with
  | Ok _ -> Alcotest.failf "%s: malformed config unexpectedly parsed" name
  | Error e ->
      if not (contains e needle) then
        Alcotest.failf "%s: error %S does not mention %S" name e needle

let test_config_rejects_negative () =
  expect_reject "negative" "app x\nbase -0x10 0x20\n" "negative"

let test_config_rejects_bad_range () =
  expect_reject "hi < lo" "app x\nbase 0x30 0x10\n" "bad range"

let test_config_rejects_out_of_order () =
  expect_reject "out of order" "app x\nbase 0x100 0x200\nbase 0x0 0x80\n"
    "out-of-order"

let test_config_rejects_overlap () =
  expect_reject "overlap" "app x\nbase 0x0 0x80\nbase 0x40 0xc0\n"
    "overlapping"

let test_config_rejects_truncated () =
  expect_reject "truncated" "app x\nbase 0x0 0x40\nbase 0x60\n" "line 3"

let test_config_accepts_adjacent () =
  match View_config.of_string "app x\nbase 0x0 0x40\nbase 0x40 0x80\n" with
  | Ok cfg -> check_int "merged size" 0x80 (View_config.size cfg)
  | Error e -> Alcotest.failf "adjacent spans rejected: %s" e

(* ---------------- defensive stack walks ---------------- *)

let image = lazy (Image.build_exn ())
let fresh () = let os = Os.create (Lazy.force image) in (os, Hyp.attach os)

let poke os a v =
  let gpa = Layout.gva_to_gpa a in
  let frame = Option.get (Os.ram_frame os ~gpa_page:(Layout.page_of gpa)) in
  Fc_mem.Phys_mem.write_u32 (Os.phys os)
    (Fc_mem.Phys_mem.addr_of_frame frame + (gpa mod Layout.page_size))
    v

let test_walk_cyclic_chain () =
  let os, hyp = fresh () in
  let top = Layout.kstack_top ~pid:0 in
  let e1 = top - 0x80 in
  let e2 = top - 0x40 in
  poke os e1 e2;
  poke os (e1 + 4) 0xc0100123;
  poke os e2 e1; (* back-edge: the chain loops *)
  poke os (e2 + 4) 0xc0100456;
  let w = Hyp.stack_walk hyp ~eip:0xc0100777 ~ebp:e1 () in
  Alcotest.(check (list int))
    "trustworthy prefix kept" [ 0xc0100777; 0xc0100123; 0xc0100456 ] w.Hyp.frames;
  (match w.Hyp.broken with
  | Some why -> check_bool "reports the cycle" true (contains why "cyclic")
  | None -> Alcotest.fail "cyclic chain reported as clean")

let test_walk_self_cycle () =
  let os, hyp = fresh () in
  let top = Layout.kstack_top ~pid:0 in
  let e = top - 0x40 in
  poke os e e; (* [ebp] = ebp: the tightest possible loop *)
  poke os (e + 4) 0xc0100123;
  let w = Hyp.stack_walk hyp ~eip:0xc0100777 ~ebp:e () in
  check_bool "broken" true (w.Hyp.broken <> None)

let test_walk_leaves_kernel_range () =
  let _os, hyp = fresh () in
  let w = Hyp.stack_walk hyp ~eip:0xc0100777 ~ebp:0x1000 () in
  Alcotest.(check (list int)) "only eip" [ 0xc0100777 ] w.Hyp.frames;
  match w.Hyp.broken with
  | Some why -> check_bool "reports the range" true (contains why "kernel range")
  | None -> Alcotest.fail "out-of-range rbp reported as clean"

let test_walk_depth_cap () =
  let os, hyp = fresh () in
  let top = Layout.kstack_top ~pid:0 in
  (* a long, well-formed chain climbing toward the stack top *)
  let base = top - 0x400 in
  for i = 0 to 30 do
    let e = base + (i * 0x20) in
    poke os e (e + 0x20);
    poke os (e + 4) (0xc0100100 + i)
  done;
  let w = Hyp.stack_walk hyp ~eip:0xc0100777 ~ebp:base ~max_depth:8 () in
  check_bool "frames bounded" true (List.length w.Hyp.frames <= 9);
  match w.Hyp.broken with
  | Some why -> check_bool "reports the cap" true (contains why "depth cap")
  | None -> Alcotest.fail "over-deep chain reported as clean"

let test_walk_clean_chain_still_clean () =
  let os, hyp = fresh () in
  let top = Layout.kstack_top ~pid:0 in
  let e1 = top - 0x80 in
  let e2 = top - 0x40 in
  poke os e1 e2;
  poke os (e1 + 4) 0xc0100123;
  poke os e2 0;
  poke os (e2 + 4) 0xc0100456;
  let w = Hyp.stack_walk hyp ~eip:0xc0100777 ~ebp:e1 () in
  check_bool "clean" true (w.Hyp.broken = None);
  Alcotest.(check (list int))
    "full chain" [ 0xc0100777; 0xc0100123; 0xc0100456 ] w.Hyp.frames

(* ---------------- governor state machine ---------------- *)

let tight_policy =
  {
    Governor.default_policy with
    Governor.window_cycles = 100;
    throttle_after = 2;
    storm_after = 4;
    cooldown_cycles = 50;
    quarantine_after = 2;
  }

let test_governor_throttle_then_storm () =
  let g = Governor.create tight_policy in
  let ev cycle = Governor.note_event g ~comm:"x" ~cycle in
  check_bool "1st: steady" true (ev 1 = `Steady);
  check_bool "2nd: throttle" true (ev 2 = `Throttle);
  check_bool "throttled state" true (Governor.state g ~comm:"x" = Governor.Throttled);
  check_bool "3rd: steady" true (ev 3 = `Steady);
  check_bool "4th: storm" true (ev 4 = `Storm 4);
  check_bool "degrade verdict" true
    (Governor.note_degraded g ~comm:"x" ~cycle:5 = `Degraded);
  check_bool "degraded state" true (Governor.state g ~comm:"x" = Governor.Degraded);
  check_bool "degraded comms stay steady" true (ev 6 = `Steady)

let test_governor_window_expiry () =
  let g = Governor.create tight_policy in
  let ev cycle = Governor.note_event g ~comm:"x" ~cycle in
  ignore (ev 0);
  ignore (ev 0);
  ignore (ev 0);
  (* the window is 100 cycles: these three are long gone by cycle 500 *)
  check_bool "expired events do not storm" true (ev 500 = `Steady)

let test_governor_renarrow_cooldown () =
  let g = Governor.create tight_policy in
  ignore (Governor.note_degraded g ~comm:"x" ~cycle:100);
  check_bool "not due before cooldown" false
    (Governor.renarrow_due g ~comm:"x" ~cycle:149);
  check_bool "due after cooldown" true
    (Governor.renarrow_due g ~comm:"x" ~cycle:150);
  Governor.note_renarrowed g ~comm:"x";
  check_bool "back to narrow" true (Governor.state g ~comm:"x" = Governor.Narrow)

let test_governor_quarantine_after_degradations () =
  let g = Governor.create tight_policy in
  check_bool "first degradation" true
    (Governor.note_degraded g ~comm:"x" ~cycle:0 = `Degraded);
  Governor.note_renarrowed g ~comm:"x";
  check_bool "second degradation quarantines" true
    (Governor.note_degraded g ~comm:"x" ~cycle:10 = `Quarantine);
  check_bool "quarantined state" true
    (Governor.state g ~comm:"x" = Governor.Quarantined);
  check_bool "quarantined comms never renarrow" false
    (Governor.renarrow_due g ~comm:"x" ~cycle:1_000_000)

let test_governor_unhandled_policy () =
  let die = Governor.create { tight_policy with Governor.on_unhandled = `Die } in
  check_bool "die policy dies" true (Governor.note_unhandled die ~comm:"x" = `Die);
  let g = Governor.create tight_policy in
  check_bool "first unhandled degrades" true
    (Governor.note_unhandled g ~comm:"x" = `Degrade);
  check_bool "second unhandled quarantines" true
    (Governor.note_unhandled g ~comm:"x" = `Quarantine);
  Governor.quarantine g ~comm:"x" ~cycle:0;
  check_bool "quarantined comms tolerate" true
    (Governor.note_unhandled g ~comm:"x" = `Tolerate)

(* ---------------- injector end-to-end ---------------- *)

let enforced_guest ?governor ~load_view () =
  let profiles = profiles () in
  let app = App.find_exn "top" in
  let os = Os.create ~config:(App.os_config app) (Profiles.image profiles) in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable ?governor hyp in
  if load_view then
    ignore (Facechange.load_view fc (Profiles.config_of profiles "top"));
  (os, hyp, fc, app)

let test_injector_breakpoint_misses () =
  let os, hyp, fc, app = enforced_guest ~load_view:true () in
  let (_ : Fc_machine.Process.t) = Os.spawn os ~name:"top" (app.App.script 3) in
  let (_ : Fc_machine.Process.t) = Os.spawn os ~name:"top" (app.App.script 3) in
  let plan =
    {
      Fault.seed = 0;
      faults = [ { Fault.at_round = 3; kind = Fault.Miss_breakpoints { count = 3 } } ];
    }
  in
  let inj = Injector.arm ~os ~hyp ~fc plan in
  Os.run ~max_rounds:20_000 os;
  Injector.disarm inj;
  check_int "all three breakpoints swallowed" 3 (Injector.bp_misses inj);
  check_int "one fault event" 1 (Injector.injected inj)

let spurious_plan =
  {
    Fault.seed = 0;
    faults =
      [ { Fault.at_round = 4; kind = Fault.Spurious_ud2 { frac = 5_000; count = 3 } } ];
  }

let test_spurious_ud2_ungoverned_panics () =
  (* no views loaded: the exit arrives under the full kernel view, which
     the paper's recovery path cannot explain -> guest death *)
  let os, hyp, fc, app = enforced_guest ~load_view:false () in
  let (_ : Fc_machine.Process.t) = Os.spawn os ~name:"top" (app.App.script 3) in
  let inj = Injector.arm ~os ~hyp ~fc spurious_plan in
  (match Os.run ~max_rounds:20_000 os with
  | () -> Alcotest.fail "expected a guest panic without the governor"
  | exception Os.Guest_panic m ->
      check_bool "the paper's failure mode" true
        (contains m "full kernel view"));
  Injector.disarm inj

let test_spurious_ud2_governed_survives () =
  let os, hyp, fc, app =
    enforced_guest ~governor:Governor.default_policy ~load_view:false ()
  in
  let p = Os.spawn os ~name:"top" (app.App.script 3) in
  let inj = Injector.arm ~os ~hyp ~fc spurious_plan in
  (match Os.run ~max_rounds:20_000 os with
  | () -> ()
  | exception Os.Guest_panic m -> Alcotest.failf "governed guest died: %s" m);
  Injector.disarm inj;
  check_bool "workload completed" true (Fc_machine.Process.is_exited p);
  check_bool "the governor intervened" true
    (Facechange.degradations fc + Facechange.tolerated_faults fc > 0)

let test_storm_degrade_and_renarrow () =
  let policy =
    {
      Governor.default_policy with
      Governor.throttle_after = 1;
      storm_after = 2;
      cooldown_cycles = 1_000;
      quarantine_after = 99;
    }
  in
  let os, hyp, fc, app = enforced_guest ~governor:policy ~load_view:true () in
  let narrow = Facechange.selector fc ~comm:"top" in
  let p = Os.spawn os ~name:"top" (app.App.script 4) in
  let (_ : Fc_machine.Process.t) = Os.spawn os ~name:"side" (app.App.script 2) in
  let plan =
    {
      Fault.seed = 0;
      faults =
        [
          { Fault.at_round = 3; kind = Fault.Broken_rbp { frac = 1_000 } };
          { Fault.at_round = 4; kind = Fault.Broken_rbp { frac = 2_000 } };
        ];
    }
  in
  let inj = Injector.arm ~os ~hyp ~fc plan in
  (match Os.run ~max_rounds:20_000 os with
  | () -> ()
  | exception Os.Guest_panic m -> Alcotest.failf "governed guest died: %s" m);
  Injector.disarm inj;
  check_bool "workload completed" true (Fc_machine.Process.is_exited p);
  (* the second fault can land after the comm is already degraded, in which
     case no walk happens for it: only the first chain is guaranteed *)
  check_bool "broken chain detected" true (Facechange.broken_backtraces fc >= 1);
  check_bool "stormed" true (Facechange.storms fc >= 1);
  check_bool "degraded" true (Facechange.degradations fc >= 1);
  check_bool "renarrowed after cooldown" true (Facechange.renarrows fc >= 1);
  check_int "binding restored to the narrow view" narrow
    (Facechange.selector fc ~comm:"top")

let test_chaos_plan_deterministic () =
  let profiles = profiles () in
  let a = Chaos.run_plan profiles ~seed:11 in
  let b = Chaos.run_plan profiles ~seed:11 in
  check_bool "identical rows" true (a = b)

(* ---------------- the survival property (QCheck) ---------------- *)

let prop_governed_never_panics =
  QCheck.Test.make
    ~name:
      "chaos plans under the governor: no panic, no wedge, attribution exact"
    ~count:100 (QCheck.int_range 1 1_000_000) (fun seed ->
      let row = Chaos.run_plan (profiles ()) ~seed in
      row.Chaos.p_panic = None
      && (not row.Chaos.p_wedged)
      && row.Chaos.p_attribution_ok
      && row.Chaos.p_validation_misses = 0)

let suites =
  [
    ( "faults",
      let tc n f = Alcotest.test_case n `Quick f in
      [
        tc "splitmix64 streams are seed-deterministic" test_frand_deterministic;
        tc "fault plans are pure functions of the seed" test_fault_gen_deterministic;
        tc "config: negative span rejected" test_config_rejects_negative;
        tc "config: hi < lo rejected" test_config_rejects_bad_range;
        tc "config: out-of-order span rejected" test_config_rejects_out_of_order;
        tc "config: overlapping span rejected" test_config_rejects_overlap;
        tc "config: truncated line rejected" test_config_rejects_truncated;
        tc "config: adjacent spans accepted" test_config_accepts_adjacent;
        tc "walk: cyclic rbp chain detected" test_walk_cyclic_chain;
        tc "walk: self-loop detected" test_walk_self_cycle;
        tc "walk: rbp leaving the kernel detected" test_walk_leaves_kernel_range;
        tc "walk: depth cap enforced" test_walk_depth_cap;
        tc "walk: clean chains stay clean" test_walk_clean_chain_still_clean;
        tc "governor: throttle then storm" test_governor_throttle_then_storm;
        tc "governor: window expiry" test_governor_window_expiry;
        tc "governor: renarrow cooldown" test_governor_renarrow_cooldown;
        tc "governor: quarantine after repeated degradations"
          test_governor_quarantine_after_degradations;
        tc "governor: unhandled-fault policy" test_governor_unhandled_policy;
        tc "injector: breakpoint misses" test_injector_breakpoint_misses;
        tc "spurious UD2 without governor: guest dies"
          test_spurious_ud2_ungoverned_panics;
        tc "spurious UD2 with governor: guest survives"
          test_spurious_ud2_governed_survives;
        tc "storm -> degrade -> renarrow round trip"
          test_storm_degrade_and_renarrow;
        tc "chaos plans are deterministic" test_chaos_plan_deterministic;
      ] );
    ( "faults.properties",
      List.map QCheck_alcotest.to_alcotest [ prop_governed_never_panics ] );
  ]
