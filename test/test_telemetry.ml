(* Unit tests for the continuous-telemetry layer: the delta-encoded
   time series, the sampling-profiler folds, the Prometheus text
   exposition, the [obs.trace_dropped] gauge and the deterministic
   instruction-count ticker.  Cross-engine parity of armed telemetry is
   proven by the differential harness (test_tlb / test_sblocks); the
   end-to-end fleet pins live in bench/check.exe --telemetry. *)

module Action = Fc_machine.Action
module Process = Fc_machine.Process
module Os = Fc_machine.Os
module Image = Fc_kernel.Image
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module App = Fc_apps.App
module Probe = Fc_benchkit.Probe
module Obs = Fc_obs.Obs
module Trace = Fc_obs.Trace
module Event = Fc_obs.Event
module Metrics = Fc_obs.Metrics
module Timeseries = Fc_obs.Timeseries
module Sampler = Fc_obs.Sampler
module Export = Fc_obs.Export
module J = Fc_obs.Jsonx

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let image = lazy (Image.build_exn ())

(* ---------------- Prometheus sanitization ---------------- *)

let test_prom_name () =
  check_string "plain key" "facechange_fc_view_switches"
    (Export.prom_name ~subsystem:"fc" "view_switches");
  check_string "dots become underscores" "facechange_os_decode_cache_frames"
    (Export.prom_name ~subsystem:"os" "decode.cache_frames");
  check_string "hostile characters collapse to underscores"
    "facechange_a_b_c_d_e_f"
    (Export.prom_name ~subsystem:"a-b" "c d.e/f");
  check_string "colons survive (prometheus allows them)" "facechange_ns_a:b"
    (Export.prom_name ~subsystem:"ns" "a:b")

let test_prom_escape_label () =
  check_string "backslash, quote and newline are escaped" "a\\\"b\\\\c\\nd"
    (Export.prom_escape_label "a\"b\\c\nd");
  check_string "clean values pass through" "top-2.1"
    (Export.prom_escape_label "top-2.1")

(* A tiny registry rendered end-to-end: one counter, one gauge, one
   labeled family, one histogram with observations in two log2 buckets.
   The exposition is golden — format drift must be deliberate. *)
let test_prom_exposition () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~subsystem:"fc" "view_switches" in
  Metrics.add c 3;
  Metrics.gauge m ~subsystem:"obs" "trace_dropped" (fun () -> 7);
  let fam = Metrics.counter_family m ~subsystem:"os" "run_slices" in
  Metrics.add (Metrics.family_counter fam "top") 2;
  Metrics.add (Metrics.family_counter fam "bash") 5;
  let h = Metrics.histogram m ~subsystem:"hyp" "charge_cycles" in
  Metrics.observe h 1;
  Metrics.observe h 3;
  let out = Export.metrics_to_prometheus m in
  let has needle =
    let nl = String.length needle and ol = String.length out in
    let rec go i = i + nl <= ol && (String.sub out i nl = needle || go (i + 1)) in
    check_bool (Printf.sprintf "exposition contains %S" needle) true (go 0)
  in
  has "# TYPE facechange_fc_view_switches counter";
  has "facechange_fc_view_switches 3";
  has "# TYPE facechange_obs_trace_dropped gauge";
  has "facechange_obs_trace_dropped 7";
  has "facechange_os_run_slices{app=\"top\"} 2";
  has "facechange_os_run_slices{app=\"bash\"} 5";
  has "# TYPE facechange_hyp_charge_cycles histogram";
  has "facechange_hyp_charge_cycles_bucket{le=\"+Inf\"} 2";
  has "facechange_hyp_charge_cycles_sum 4";
  has "facechange_hyp_charge_cycles_count 2";
  (* one TYPE line per family name, not per member *)
  let count_type =
    let needle = "# TYPE facechange_os_run_slices counter" in
    let nl = String.length needle in
    let n = ref 0 in
    for i = 0 to String.length out - nl do
      if String.sub out i nl = needle then incr n
    done;
    !n
  in
  check_int "one TYPE line for the whole family" 1 count_type

(* ---------------- time series: delta encoding ---------------- *)

let test_series_deltas () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~subsystem:"fc" "recoveries" in
  let g = ref 10 in
  Metrics.gauge m ~subsystem:"obs" "queue" (fun () -> !g);
  let ts = Timeseries.create ~period:100 m in
  Metrics.add c 5;
  Timeseries.tick ts ~instructions:100;
  Metrics.add c 2;
  g := 4;
  Timeseries.tick ts ~instructions:200;
  let s = Timeseries.export ts in
  check_int "two intervals" 2 s.Timeseries.s_intervals;
  check_int "nothing dropped" 0 s.Timeseries.s_dropped;
  let deltas =
    List.map (fun p -> List.assoc "fc.recoveries" p.Timeseries.p_counters)
      s.Timeseries.s_points
  in
  Alcotest.(check (list int)) "counters are per-interval deltas" [ 5; 2 ] deltas;
  let gauges =
    List.map (fun p -> List.assoc "obs.queue" p.Timeseries.p_gauges)
      s.Timeseries.s_points
  in
  Alcotest.(check (list int)) "gauges are boundary values" [ 10; 4 ] gauges;
  (* the gating invariant: deltas re-sum to the registry total *)
  check_int "sum of deltas equals the registry total"
    (Option.get (Metrics.find m "fc.recoveries"))
    (List.assoc "fc.recoveries" (Timeseries.totals s))

let test_series_histogram_rows () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~subsystem:"hyp" "lat" in
  let ts = Timeseries.create ~period:100 m in
  Metrics.observe h 1;
  Timeseries.tick ts ~instructions:100;
  Metrics.observe h 8;
  Timeseries.tick ts ~instructions:200;
  Timeseries.tick ts ~instructions:300;
  let s = Timeseries.export ts in
  let rows =
    List.map (fun p -> List.assoc "hyp.lat" p.Timeseries.p_histograms)
      s.Timeseries.s_points
  in
  (match rows with
  | [ r1; r2; r3 ] ->
      check_int "interval 1: one observation" 1 r1.Timeseries.hr_count;
      check_int "interval 1: sum" 1 r1.Timeseries.hr_sum;
      check_int "interval 2: one observation" 1 r2.Timeseries.hr_count;
      check_int "interval 2: sum" 8 r2.Timeseries.hr_sum;
      check_int "interval 2: cumulative max at boundary" 8 r2.Timeseries.hr_max;
      check_int "quiet interval: empty row" 0 r3.Timeseries.hr_count;
      check_bool "quiet interval: percentile is nan" true
        (Float.is_nan (Timeseries.row_percentile r3 0.5));
      check_bool "bucket deltas are disjoint" true
        (r1.Timeseries.hr_buckets <> r2.Timeseries.hr_buckets)
  | rs -> Alcotest.failf "expected 3 rows, got %d" (List.length rs));
  (* bucket deltas re-sum per interval *)
  List.iter
    (fun r ->
      check_int "bucket deltas sum to the interval count" r.Timeseries.hr_count
        (List.fold_left (fun a (_, d) -> a + d) 0 r.Timeseries.hr_buckets))
    rows

let test_series_ring_drop () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~subsystem:"fc" "x" in
  let ts = Timeseries.create ~capacity:2 ~period:10 m in
  for i = 1 to 4 do
    Metrics.incr c;
    Timeseries.tick ts ~instructions:(i * 10)
  done;
  let s = Timeseries.export ts in
  check_int "all four ticks counted" 4 s.Timeseries.s_intervals;
  check_int "two points shed by the ring" 2 s.Timeseries.s_dropped;
  check_int "ring holds the newest two" 2 (List.length s.Timeseries.s_points);
  Alcotest.(check (list int)) "boundaries are the newest, in order" [ 3; 4 ]
    (List.map (fun p -> p.Timeseries.p_boundary) s.Timeseries.s_points)

let test_series_merge () =
  let mk bump =
    let m = Metrics.create () in
    let c = Metrics.counter m ~subsystem:"fc" "x" in
    let ts = Timeseries.create ~period:100 m in
    Metrics.add c bump;
    Timeseries.tick ~wall:(float_of_int bump) ts ~instructions:100;
    Metrics.add c 1;
    Timeseries.tick ~wall:(float_of_int (bump + 1)) ts ~instructions:200;
    Timeseries.export ts
  in
  let a = mk 3 and b = mk 10 in
  let m1 = Timeseries.merge [ a; b ] and m2 = Timeseries.merge [ b; a ] in
  check_string "merge is order-independent" (Timeseries.fingerprint m1)
    (Timeseries.fingerprint m2);
  (match m1.Timeseries.s_points with
  | [ p1; p2 ] ->
      check_int "deltas sum per boundary (1)" 13
        (List.assoc "fc.x" p1.Timeseries.p_counters);
      check_int "deltas sum per boundary (2)" 2
        (List.assoc "fc.x" p2.Timeseries.p_counters);
      check_int "instructions sum" 200 p1.Timeseries.p_instructions;
      Alcotest.(check (option (float 1e-9))) "wall takes the max" (Some 10.)
        p1.Timeseries.p_wall
  | ps -> Alcotest.failf "expected 2 merged points, got %d" (List.length ps));
  check_bool "mismatched periods refuse to merge" true
    (match
       Timeseries.merge
         [ a; { b with Timeseries.s_period = 50 } ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_series_fingerprint_excludes_engine () =
  let mk tlb_hits =
    let m = Metrics.create () in
    let e = Metrics.counter m ~subsystem:"tlb" "i_hits" in
    let c = Metrics.counter m ~subsystem:"fc" "x" in
    let ts = Timeseries.create ~period:100 m in
    Metrics.add e tlb_hits;
    Metrics.add c 2;
    Timeseries.tick ts ~instructions:100;
    Timeseries.export ts
  in
  check_string "engine counters are outside the fingerprint"
    (Timeseries.fingerprint (mk 5))
    (Timeseries.fingerprint (mk 500));
  check_bool "wall clocks are outside the fingerprint too" true
    (let m = Metrics.create () in
     let ts = Timeseries.create ~period:100 m in
     Timeseries.tick ~wall:1.0 ts ~instructions:100;
     let a = Timeseries.export ts in
     let m' = Metrics.create () in
     let ts' = Timeseries.create ~period:100 m' in
     Timeseries.tick ~wall:2.0 ts' ~instructions:100;
     Timeseries.fingerprint a = Timeseries.fingerprint (Timeseries.export ts'));
  check_bool "observable counters are inside it" true
    (let m = Metrics.create () in
     let c = Metrics.counter m ~subsystem:"fc" "x" in
     let ts = Timeseries.create ~period:100 m in
     Metrics.add c 3;
     Timeseries.tick ts ~instructions:100;
     Timeseries.fingerprint (Timeseries.export ts)
     <> Timeseries.fingerprint (mk 5))

(* ---------------- sampler folds ---------------- *)

let test_sampler_folds () =
  let s = Sampler.create () in
  Sampler.record s ~comm:"top" ~frames:[ "a"; "b" ];
  Sampler.record s ~comm:"top" ~frames:[ "a"; "b" ];
  Sampler.record s ~comm:"top" ~frames:[ "a" ];
  Sampler.record s ~comm:"bash" ~frames:[];
  check_int "samples counted" 4 (Sampler.samples s);
  let folds = Sampler.export s in
  check_int "equal stacks collapse" 3 (List.length folds);
  check_int "total equals samples" 4 (Sampler.total folds);
  check_string "flamegraph.pl folded lines" "bash 1\ntop;a 1\ntop;a;b 2\n"
    (Sampler.folded_text folds)

let test_sampler_cleans_frames () =
  let s = Sampler.create () in
  Sampler.record s ~comm:"my app" ~frames:[ "f;g"; "h i" ];
  match Sampler.export s with
  | [ f ] ->
      check_bool "no raw separators survive inside a frame" false
        (String.contains
           (String.concat ""
              (String.split_on_char ';' f.Sampler.f_stack))
           ' ')
  | fs -> Alcotest.failf "expected 1 fold, got %d" (List.length fs)

let test_sampler_merge () =
  let mk counts =
    let s = Sampler.create () in
    List.iter
      (fun (comm, n) ->
        for _ = 1 to n do
          Sampler.record s ~comm ~frames:[ "k" ]
        done)
      counts;
    Sampler.export s
  in
  let a = mk [ ("top", 2); ("bash", 1) ] and b = mk [ ("top", 3) ] in
  let merged = Sampler.merge [ a; b ] in
  check_int "counts sum per stack" 5
    (List.find (fun f -> f.Sampler.f_stack = "top;k") merged).Sampler.f_count;
  check_int "merged total" 6 (Sampler.total merged);
  check_string "merge is order-independent" (Sampler.fingerprint merged)
    (Sampler.fingerprint (Sampler.merge [ b; a ]))

(* ---------------- obs.trace_dropped gauge ---------------- *)

let test_trace_dropped_gauge () =
  let obs = Obs.create () in
  let m = Obs.metrics obs in
  check_int "gauge registered at creation, zero before arming" 0
    (Option.get (Metrics.find m "obs.trace_dropped"));
  Trace.arm ~capacity:2 (Obs.trace obs);
  for i = 1 to 5 do
    Obs.emit obs (Event.Sample { vid = 0; pid = i; comm = "x"; pc = 0; view = 0 })
  done;
  check_int "gauge tracks ring drops" 3
    (Option.get (Metrics.find m "obs.trace_dropped"))

(* ---------------- Event.Sample on the timeline ---------------- *)

let test_sample_on_timeline () =
  let obs = Obs.create () in
  Trace.arm (Obs.trace obs);
  Obs.emit obs
    (Event.Sample { vid = 0; pid = 7; comm = "top"; pc = 0xc0100005; view = 1 });
  let j = Export.timeline_to_json (Obs.trace obs) in
  let events =
    match J.member "traceEvents" j with
    | Some (J.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let sample =
    List.find_opt
      (fun e ->
        J.member "name" e |> Option.map (fun n -> J.to_str n) = Some (Some "sample"))
      events
  in
  match sample with
  | None -> Alcotest.fail "Sample event missing from the timeline"
  | Some e ->
      check_string "rendered as a thread-scoped instant" "i"
        (Option.get (J.to_str (Option.get (J.member "ph" e))))

(* ---------------- deterministic instruction-count ticker ----------- *)

(* The ticker must fire exactly floor(instructions / period) times over
   a run, deterministically, and cost nothing once disarmed. *)
let test_ticker_determinism () =
  let run_once () =
    let app = App.find_exn "top" in
    let os = Os.create ~config:(App.os_config app) (Lazy.force image) in
    let marks = ref [] in
    Os.arm_tick os ~period:5_000 (fun () ->
        marks := Os.instructions os :: !marks);
    let (_ : Process.t) = Os.spawn os ~name:"top" (app.App.script 2) in
    Os.run ~max_rounds:20_000 os;
    Os.disarm_tick os;
    (Os.instructions os, List.rev !marks)
  in
  let instructions, marks = run_once () in
  let instructions', marks' = run_once () in
  check_int "runs are deterministic" instructions instructions';
  Alcotest.(check (list int)) "tick marks are identical run to run" marks
    marks';
  check_int "ticks fired = floor(instructions / period)"
    (instructions / 5_000) (List.length marks);
  (* every tick fires at-or-after its nominal boundary (ticks land on
     slice ends, so a long slice catches up with a burst of ticks at the
     same mark — late, never early, and never out of order) *)
  List.iteri
    (fun i at ->
      check_bool "tick not early" true (at >= (i + 1) * 5_000))
    marks;
  check_bool "marks are non-decreasing" true
    (let rec mono = function
       | a :: (b :: _ as rest) -> a <= b && mono rest
       | _ -> true
     in
     mono marks)

(* ---------------- the probe, end to end on one guest --------------- *)

let test_probe_roundtrip () =
  let app = App.find_exn "top" in
  let os = Os.create ~config:(App.os_config app) (Lazy.force image) in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable hyp in
  let (_ : Process.t) = Os.spawn os ~name:"top" (app.App.script 2) in
  let probe = Probe.arm ~period:5_000 ~os ~hyp ~fc () in
  Os.run ~max_rounds:20_000 os;
  let r = Probe.finish probe in
  Alcotest.(check (list string)) "deltas re-sum to the registry totals" []
    r.Probe.r_resum_errors;
  check_int "one sample per vCPU per tick" (r.Probe.r_ticks * r.Probe.r_vcpus)
    r.Probe.r_samples;
  check_int "ticks = floor(instructions/period) + final flush"
    ((Os.instructions os / 5_000) + 1)
    r.Probe.r_ticks;
  check_int "one series interval per tick" r.Probe.r_ticks
    r.Probe.r_series.Timeseries.s_intervals;
  check_int "profiler total equals samples" r.Probe.r_samples
    (Sampler.total r.Probe.r_folds);
  check_int "nothing dropped" 0 r.Probe.r_series.Timeseries.s_dropped

let suites =
  [
    ( "telemetry",
      [
        Alcotest.test_case "prometheus: name sanitization" `Quick
          test_prom_name;
        Alcotest.test_case "prometheus: label escaping" `Quick
          test_prom_escape_label;
        Alcotest.test_case "prometheus: text exposition" `Quick
          test_prom_exposition;
        Alcotest.test_case "series: counter deltas and gauge boundaries"
          `Quick test_series_deltas;
        Alcotest.test_case "series: histogram bucket-delta rows" `Quick
          test_series_histogram_rows;
        Alcotest.test_case "series: bounded ring sheds oldest" `Quick
          test_series_ring_drop;
        Alcotest.test_case "series: fleet merge" `Quick test_series_merge;
        Alcotest.test_case "series: fingerprint excludes engine counters"
          `Quick test_series_fingerprint_excludes_engine;
        Alcotest.test_case "sampler: folds collapse and export" `Quick
          test_sampler_folds;
        Alcotest.test_case "sampler: frames are cleaned" `Quick
          test_sampler_cleans_frames;
        Alcotest.test_case "sampler: fleet merge" `Quick test_sampler_merge;
        Alcotest.test_case "obs.trace_dropped gauge" `Quick
          test_trace_dropped_gauge;
        Alcotest.test_case "timeline: Sample instants" `Quick
          test_sample_on_timeline;
        Alcotest.test_case "ticker: deterministic instruction marks" `Slow
          test_ticker_determinism;
        Alcotest.test_case "probe: one-guest roundtrip" `Slow
          test_probe_roundtrip;
      ] );
  ]
