module Phys = Fc_mem.Phys_mem
module Pt = Fc_mem.Page_table
module Ept = Fc_mem.Ept

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Phys_mem                                                            *)
(* ------------------------------------------------------------------ *)

let test_alloc_rw () =
  let m = Phys.create () in
  let f = Phys.alloc m in
  let a = Phys.addr_of_frame f in
  check_int "zeroed" 0 (Phys.read_byte m a);
  Phys.write_byte m (a + 17) 0xab;
  check_int "written" 0xab (Phys.read_byte m (a + 17));
  check_int "masked" 0x01 (Phys.write_byte m a 0x101; Phys.read_byte m a)

let test_free_recycle () =
  let m = Phys.create () in
  let f1 = Phys.alloc m in
  check_int "live" 1 (Phys.live_frames m);
  Phys.free m f1;
  check_int "none live" 0 (Phys.live_frames m);
  let f2 = Phys.alloc m in
  check_int "recycled" f1 f2;
  check_int "recycled frame zeroed" 0 (Phys.read_byte m (Phys.addr_of_frame f2))

let test_free_dead_raises () =
  let m = Phys.create () in
  Alcotest.check_raises "double free"
    (Invalid_argument "Phys_mem.free: frame not live") (fun () ->
      let f = Phys.alloc m in
      Phys.free m f;
      Phys.free m f)

let test_read_dead_raises () =
  let m = Phys.create () in
  match Phys.read_byte m 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure reading unallocated frame"

let test_u32 () =
  let m = Phys.create () in
  let f = Phys.alloc m in
  let a = Phys.addr_of_frame f in
  Phys.write_u32 m a 0xdeadbeef;
  check_int "u32 roundtrip" 0xdeadbeef (Phys.read_u32 m a);
  check_int "little-endian low byte" 0xef (Phys.read_byte m a)

let test_u32_cross_page () =
  let m = Phys.create () in
  let f1 = Phys.alloc m in
  let _f2 = Phys.alloc m in
  let a = Phys.addr_of_frame f1 + Phys.page_size - 2 in
  Phys.write_u32 m a 0x12345678;
  check_int "cross-page u32" 0x12345678 (Phys.read_u32 m a)

let test_fill_pattern_phase () =
  let m = Phys.create () in
  let f = Phys.alloc m in
  let a = Phys.addr_of_frame f in
  Phys.fill m ~addr:(a + 2) ~len:5 ~pattern:[ 0x0f; 0x0b ];
  check_int "p0" 0x0f (Phys.read_byte m (a + 2));
  check_int "p1" 0x0b (Phys.read_byte m (a + 3));
  check_int "p2" 0x0f (Phys.read_byte m (a + 4));
  check_int "p4" 0x0f (Phys.read_byte m (a + 6));
  check_int "untouched" 0 (Phys.read_byte m (a + 7))

let test_copy () =
  let m = Phys.create () in
  let f1 = Phys.alloc m and f2 = Phys.alloc m in
  let a1 = Phys.addr_of_frame f1 and a2 = Phys.addr_of_frame f2 in
  Phys.blit_bytes m ~src:(Bytes.of_string "hello") ~src_off:0 ~dst:a1 ~len:5;
  Phys.copy m ~src:a1 ~dst:(a2 + 100) ~len:5;
  check_int "copied" (Char.code 'h') (Phys.read_byte m (a2 + 100));
  check_int "copied end" (Char.code 'o') (Phys.read_byte m (a2 + 104))

let test_refcounts () =
  let m = Phys.create () in
  let f = Phys.alloc m in
  check_int "starts at 1" 1 (Phys.refcount m f);
  Phys.incref m f;
  Phys.incref m f;
  check_int "incref'd" 3 (Phys.refcount m f);
  Phys.free m f;
  check_bool "still live after one free" true (Phys.is_live m f);
  check_int "decremented" 2 (Phys.refcount m f);
  Phys.free m f;
  Phys.free m f;
  check_bool "last free releases" false (Phys.is_live m f);
  check_int "dead frame refcount 0" 0 (Phys.refcount m f);
  Alcotest.check_raises "incref of dead frame raises"
    (Invalid_argument "Phys_mem.incref: frame not live") (fun () ->
      Phys.incref m f)

(* ------------------------------------------------------------------ *)
(* Frame_cache                                                         *)
(* ------------------------------------------------------------------ *)

module Fc = Fc_mem.Frame_cache

let test_frame_cache_hit_increfs () =
  let m = Phys.create () in
  let c = Fc.create m in
  let f = Phys.alloc m in
  Fc.register c "key" f;
  check_bool "hit" true (Fc.find c "key" = Some f);
  check_int "hit took a reference" 2 (Phys.refcount m f);
  check_int "hits" 1 (Fc.hits c);
  check_bool "miss on unknown key" true (Fc.find c "other" = None);
  check_int "misses" 1 (Fc.misses c);
  check_int "resident" 1 (Fc.resident c)

let test_frame_cache_invalidation () =
  let m = Phys.create () in
  let c = Fc.create m in
  (* a later write invalidates the entry (in-place privatize) *)
  let f1 = Phys.alloc m in
  Fc.register c "a" f1;
  Phys.write_byte m (Phys.addr_of_frame f1) 0x55;
  check_bool "stale after write" true (Fc.find c "a" = None);
  (* freeing and recycling the frame must not resurrect the entry *)
  let f2 = Phys.alloc m in
  Fc.register c "b" f2;
  Phys.free m f2;
  let f3 = Phys.alloc m in
  check_int "frame recycled" f2 f3;
  check_bool "stale after free+recycle" true (Fc.find c "b" = None);
  check_int "nothing resident" 0 (Fc.resident c)

(* ------------------------------------------------------------------ *)
(* Page_table                                                          *)
(* ------------------------------------------------------------------ *)

let test_pt_translate () =
  let pt = Pt.create () in
  Pt.map pt ~gva_page:0x10 ~gpa_page:0x99;
  check_bool "mapped page" true (Pt.translate_page pt 0x10 = Some 0x99);
  check_bool "unmapped" true (Pt.translate_page pt 0x11 = None);
  check_int "offset preserved" ((0x99 * 4096) + 123)
    (Option.get (Pt.translate pt ((0x10 * 4096) + 123)))

let test_pt_unmap () =
  let pt = Pt.create () in
  Pt.map pt ~gva_page:1 ~gpa_page:2;
  Pt.unmap pt ~gva_page:1;
  check_bool "unmapped" true (Pt.translate_page pt 1 = None)

let test_pt_copy_range () =
  let src = Pt.create () and dst = Pt.create () in
  Pt.map src ~gva_page:5 ~gpa_page:50;
  Pt.map src ~gva_page:10 ~gpa_page:100;
  Pt.map src ~gva_page:20 ~gpa_page:200;
  Pt.copy_range ~src ~dst ~lo_page:6 ~hi_page:20;
  check_bool "below excluded" true (Pt.translate_page dst 5 = None);
  check_bool "inside copied" true (Pt.translate_page dst 10 = Some 100);
  check_bool "hi exclusive" true (Pt.translate_page dst 20 = None)

(* ------------------------------------------------------------------ *)
(* Ept                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ept_map_translate () =
  let e = Ept.create () in
  Ept.map_page e ~gpa_page:0x12345 ~hpa_frame:7;
  check_bool "mapped" true (Ept.translate_page e 0x12345 = Some 7);
  check_bool "neighbor unmapped" true (Ept.translate_page e 0x12346 = None);
  check_int "address offset" ((7 * 4096) + 5)
    (Option.get (Ept.translate e ((0x12345 * 4096) + 5)))

let test_ept_dir_decompose () =
  check_int "dir" 3 (Ept.dir_of_page ((3 * 1024) + 17));
  check_int "slot" 17 (Ept.slot_of_page ((3 * 1024) + 17))

let test_ept_dir_swap () =
  (* The FACE-CHANGE primitive: two views of the same guest-physical page
     resolved by swapping a directory entry. *)
  let e = Ept.create () in
  let orig = Ept.table_create () and view = Ept.table_create () in
  Ept.table_set orig ~idx:5 (Some 100);
  Ept.table_set view ~idx:5 (Some 200);
  let page = (9 * 1024) + 5 in
  Ept.set_dir e ~dir:9 (Some orig);
  check_bool "original frame" true (Ept.translate_page e page = Some 100);
  Ept.set_dir e ~dir:9 (Some view);
  check_bool "view frame" true (Ept.translate_page e page = Some 200);
  Ept.set_dir e ~dir:9 (Some orig);
  check_bool "back to original" true (Ept.translate_page e page = Some 100)

let test_ept_table_copy_is_independent () =
  let t = Ept.table_create () in
  Ept.table_set t ~idx:0 (Some 1);
  let c = Ept.table_copy t in
  Ept.table_set c ~idx:0 (Some 2);
  check_bool "original untouched" true (Ept.table_get t ~idx:0 = Some 1);
  check_bool "copy changed" true (Ept.table_get c ~idx:0 = Some 2)

let test_ept_unmap_dir () =
  let e = Ept.create () in
  Ept.map_page e ~gpa_page:0 ~hpa_frame:1;
  Ept.set_dir e ~dir:0 None;
  check_bool "violation after unmap" true (Ept.translate_page e 0 = None)

(* table_set/table_get no longer pre-check the index (callers derive it
   from slot_of_page, provably in range — see ept.mli); an out-of-range
   index still cannot corrupt memory, it trips the array bounds check. *)
let test_ept_bad_slot () =
  let t = Ept.table_create () in
  Alcotest.check_raises "slot range" (Invalid_argument "index out of bounds")
    (fun () -> Ept.table_set t ~idx:1024 (Some 0))

let prop_fill_tiles =
  QCheck.Test.make ~name:"fill tiles the pattern with stable phase" ~count:100
    QCheck.(pair (int_bound 200) (int_bound 2000))
    (fun (off, len) ->
      let m = Phys.create () in
      let f = Phys.alloc m in
      let _ = Phys.alloc m in
      let a = Phys.addr_of_frame f + off in
      Phys.fill m ~addr:a ~len ~pattern:[ 0x0f; 0x0b ];
      let ok = ref true in
      for i = 0 to len - 1 do
        let want = if i mod 2 = 0 then 0x0f else 0x0b in
        if Phys.read_byte m (a + i) <> want then ok := false
      done;
      !ok)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "mem.phys",
      [
        tc "alloc and rw" test_alloc_rw;
        tc "free recycles and zeroes" test_free_recycle;
        tc "double free raises" test_free_dead_raises;
        tc "read of dead frame raises" test_read_dead_raises;
        tc "u32 little-endian" test_u32;
        tc "u32 across page boundary" test_u32_cross_page;
        tc "fill pattern phase" test_fill_pattern_phase;
        tc "blit and copy" test_copy;
        tc "refcounted sharing" test_refcounts;
        QCheck_alcotest.to_alcotest prop_fill_tiles;
      ] );
    ( "mem.frame_cache",
      [
        tc "hit takes a reference" test_frame_cache_hit_increfs;
        tc "lazy invalidation (write, free+recycle)" test_frame_cache_invalidation;
      ] );
    ( "mem.page_table",
      [
        tc "map/translate" test_pt_translate;
        tc "unmap" test_pt_unmap;
        tc "copy_range bounds" test_pt_copy_range;
      ] );
    ( "mem.ept",
      [
        tc "map/translate" test_ept_map_translate;
        tc "dir/slot decomposition" test_ept_dir_decompose;
        tc "directory-entry swap switches views" test_ept_dir_swap;
        tc "table_copy independence" test_ept_table_copy_is_independent;
        tc "unmapped dir is a violation" test_ept_unmap_dir;
        tc "slot bounds checked" test_ept_bad_slot;
      ] );
  ]
