(* Deterministic snapshot/restore (lib/snapshot):

   - the split-run differential property — snapshot at round k, push the
     machine through the wire format, restore, run to the end: the
     outcome, stats, instruction/cycle totals and both trace digests
     must be identical to an uninterrupted run, across the whole
     {sblocks} x {tlb} matrix under random governed fault plans;
   - decode∘encode = id on captured machines (QCheck);
   - corrupt-input totality: bit flips, truncations and version bumps
     return typed errors naming section and offset — never raise;
   - warm start: a fleet cell booted from wire-format snapshots
     fingerprints identically to a cold boot;
   - live migration: pre-copy + stop-and-copy lands a guest that
     finishes with the control's digest;
   - the bounded recovery log: the retention cap and the dropped
     counter. *)

module Os = Fc_machine.Os
module Process = Fc_machine.Process
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Governor = Fc_core.Governor
module Stats = Fc_core.Stats
module Recovery_log = Fc_core.Recovery_log
module App = Fc_apps.App
module Profiles = Fc_benchkit.Profiles
module Fault = Fc_faults.Fault
module Frand = Fc_faults.Frand
module Injector = Fc_faults.Injector
module Snapshot = Fc_snapshot.Snapshot
module Migrate = Fc_host.Migrate
module Metrics = Fc_obs.Metrics
module J = Fc_obs.Jsonx

let profiles () = Lazy.force Test_env.profiles
let image () = Lazy.force Test_env.image

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* ---------------- the split-run differential property ---------------- *)

type fp = {
  fp_outcome : string;
  fp_stats : string;
  fp_instructions : int;
  fp_cycles : int;
  fp_insn : int;
  fp_events : int;
}

(* Same guest construction as test/differential.ml (minus the probe —
   snapshots capture machines, not probes): a seed-picked app under its
   enforced view, a companion, a governed random fault plan, full
   tracing. *)
let setup ~sblocks ~tlb ~fault_seed =
  let r = Frand.create (fault_seed lxor 0x7157) in
  let pool = [ "top"; "apache"; "gvim"; "bash"; "gzip" ] in
  let name = Frand.pick r pool in
  let n = 4 + Frand.int r 7 in
  let plan = Fault.gen ~seed:fault_seed ~rounds:120 ~n in
  let app = App.find_exn name in
  let os =
    Os.create ~config:(App.os_config app) ~tlb ~sblocks
      (Profiles.image (profiles ()))
  in
  let ih = ref 0 and eh = ref 0 in
  let arm_traces os =
    Os.set_trace os (Some (fun a len -> ih := (((!ih * 31) + a) * 31) + len));
    Os.set_event_trace os (Some (fun ev -> eh := (!eh * 31) + Hashtbl.hash ev))
  in
  arm_traces os;
  let hyp = Hyp.attach os in
  let fc = Facechange.enable ~governor:Governor.default_policy hyp in
  let (_ : int) =
    Facechange.load_view fc (Profiles.config_of (profiles ()) name)
  in
  let (_ : Process.t) = Os.spawn os ~name (app.App.script 4) in
  let companion = App.find_exn "top" in
  let (_ : Process.t) = Os.spawn os ~name:"companion" (companion.App.script 2) in
  let inj = Injector.arm ~os ~hyp ~fc plan in
  (os, hyp, fc, inj, ih, eh, arm_traces)

let budget = 20_000

let finalize ~outcome ~os ~fc ~ih ~eh =
  {
    fp_outcome = outcome;
    fp_stats = J.to_string (Stats.to_json (Stats.capture fc));
    fp_instructions = Os.instructions os;
    fp_cycles = Os.cycles os;
    fp_insn = !ih;
    fp_events = !eh;
  }

let continuous ~sblocks ~tlb ~fault_seed =
  let os, _hyp, fc, inj, ih, eh, _ = setup ~sblocks ~tlb ~fault_seed in
  let outcome =
    match Os.run ~max_rounds:budget os with
    | () -> "ok"
    | exception Os.Guest_panic m -> "panic: " ^ m
  in
  Injector.disarm inj;
  finalize ~outcome ~os ~fc ~ih ~eh

(* Snapshot at round [at], encode, decode, restore, run the rest.  The
   trace refs survive the handoff: segment 2 keeps folding into the same
   digests, exactly like an uninterrupted run would. *)
let split ~sblocks ~tlb ~fault_seed ~at =
  let os, hyp, fc, inj, ih, eh, arm_traces = setup ~sblocks ~tlb ~fault_seed in
  match Os.run ~until:(fun t -> Os.round t >= at) ~max_rounds:budget os with
  | exception Os.Guest_panic m ->
      Injector.disarm inj;
      finalize ~outcome:("panic: " ^ m) ~os ~fc ~ih ~eh
  | () -> (
      let cursor = Injector.cursor inj ~position:(Os.round os) in
      let snap = Snapshot.capture ~cursor ~fc ~hyp os in
      Injector.disarm inj;
      match Snapshot.decode (Snapshot.encode snap) with
      | Error e -> Alcotest.fail (Snapshot.error_to_string e)
      | Ok s -> (
          let r = Snapshot.restore ~image:(image ()) s in
          let os2 = r.Snapshot.r_os in
          arm_traces os2;
          match (r.Snapshot.r_fc, r.Snapshot.r_inj) with
          | Some fc2, Some inj2 ->
              let outcome =
                match Os.run ~max_rounds:(budget - Os.round os2) os2 with
                | () -> "ok"
                | exception Os.Guest_panic m -> "panic: " ^ m
              in
              Injector.disarm inj2;
              finalize ~outcome ~os:os2 ~fc:fc2 ~ih ~eh
          | _ -> Alcotest.fail "restore dropped the fc or injector layer"))

let check_fp ~label expect got =
  check_string (label ^ ": outcome") expect.fp_outcome got.fp_outcome;
  check_string (label ^ ": stats") expect.fp_stats got.fp_stats;
  check_int (label ^ ": instructions") expect.fp_instructions
    got.fp_instructions;
  check_int (label ^ ": cycles") expect.fp_cycles got.fp_cycles;
  check_int (label ^ ": instruction trace") expect.fp_insn got.fp_insn;
  check_int (label ^ ": event trace") expect.fp_events got.fp_events

let seeds_per_arm = 8

let differential_case ~sblocks ~tlb () =
  for i = 0 to seeds_per_arm - 1 do
    let fault_seed = 9000 + (97 * i) in
    (* snapshot rounds spread over the fault plan's active window *)
    let at = 10 + (Frand.mix fault_seed 1 land 0x3F) in
    let label =
      Printf.sprintf "seed %d @%d (%s+%s)" fault_seed at
        (if sblocks then "sb" else "no-sb")
        (if tlb then "tlb" else "no-tlb")
    in
    let expect = continuous ~sblocks ~tlb ~fault_seed in
    let got = split ~sblocks ~tlb ~fault_seed ~at in
    check_fp ~label expect got
  done

(* ---------------- roundtrip + totality ---------------- *)

(* A captured machine for codec tests: short governed run, snapshot with
   every layer. *)
let capture_machine ~fault_seed ~at =
  let os, hyp, fc, inj, _, _, _ =
    setup ~sblocks:(fault_seed land 1 = 0) ~tlb:(fault_seed land 2 = 0)
      ~fault_seed
  in
  (match Os.run ~until:(fun t -> Os.round t >= at) ~max_rounds:budget os with
  | () -> ()
  | exception Os.Guest_panic _ -> ());
  let cursor = Injector.cursor inj ~position:(Os.round os) in
  let snap = Snapshot.capture ~meta:[ ("kind", "test") ] ~cursor ~fc ~hyp os in
  Injector.disarm inj;
  snap

let prop_roundtrip =
  QCheck.Test.make ~name:"decode(encode snapshot) = snapshot" ~count:12
    (QCheck.int_range 1 100_000) (fun seed ->
      let snap = capture_machine ~fault_seed:seed ~at:(8 + (seed mod 40)) in
      match Snapshot.decode (Snapshot.encode snap) with
      | Ok s -> s = snap
      | Error e -> QCheck.Test.fail_report (Snapshot.error_to_string e))

let prop_corrupt_total =
  QCheck.Test.make
    ~name:"corrupt snapshots decode to typed errors (never raise)" ~count:60
    (QCheck.int_range 1 1_000_000) (fun seed ->
      let snap = capture_machine ~fault_seed:11 ~at:12 in
      let wire = Bytes.of_string (Snapshot.encode snap) in
      let r = Frand.create seed in
      let mutated =
        match Frand.int r 3 with
        | 0 ->
            (* single bit flip *)
            let i = Frand.int r (Bytes.length wire) in
            Bytes.set wire i
              (Char.chr (Char.code (Bytes.get wire i) lxor (1 lsl Frand.int r 8)));
            Bytes.to_string wire
        | 1 ->
            (* truncation *)
            Bytes.sub_string wire 0 (Frand.int r (Bytes.length wire))
        | _ ->
            (* version bump *)
            Bytes.set wire 4 (Char.chr (1 + Frand.int r 250));
            Bytes.to_string wire
      in
      if mutated = Bytes.to_string wire && Frand.int r 3 = 0 then true
      else
        match Snapshot.decode mutated with
        | Ok _ ->
            (* a flip inside an unverified region (e.g. flipping a CRC
               byte to its own value) cannot happen: every payload byte
               is CRC'd and the header is fully validated, so Ok means
               the mutation was the identity *)
            String.equal mutated (Snapshot.encode snap)
        | Error e ->
            String.length e.Snapshot.section > 0 && e.Snapshot.offset >= 0)

let corrupt_errors_name_sections () =
  let snap = capture_machine ~fault_seed:5 ~at:15 in
  let wire = Snapshot.encode snap in
  (* truncated header *)
  (match Snapshot.decode (String.sub wire 0 7) with
  | Error { section = "header"; _ } -> ()
  | Error e -> Alcotest.fail ("expected header error, got " ^ Snapshot.error_to_string e)
  | Ok _ -> Alcotest.fail "truncated header decoded");
  (* bad magic *)
  (match Snapshot.decode ("XXXX" ^ String.sub wire 4 (String.length wire - 4)) with
  | Error { section = "header"; offset = 0; _ } -> ()
  | Error e -> Alcotest.fail ("expected magic error, got " ^ Snapshot.error_to_string e)
  | Ok _ -> Alcotest.fail "bad magic decoded");
  (* version bump: offset names the version field *)
  (let b = Bytes.of_string wire in
   Bytes.set b 4 '\xFF';
   match Snapshot.decode (Bytes.to_string b) with
   | Error { section = "header"; offset = 4; _ } -> ()
   | Error e -> Alcotest.fail ("expected version error, got " ^ Snapshot.error_to_string e)
   | Ok _ -> Alcotest.fail "bumped version decoded");
  (* payload corruption: the error names the section tag *)
  let b = Bytes.of_string wire in
  let i = String.length wire - 3 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  match Snapshot.decode (Bytes.to_string b) with
  | Error e ->
      check_bool "section tag is 4 chars" true (String.length e.Snapshot.section = 4)
  | Ok _ -> Alcotest.fail "payload corruption decoded"

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let old_version_rejected () =
  (* the v1 wire format predates per-view tag state (EPT generations,
     the OS global-gen / divergent-page set): a v1 byte stream must come
     back as the typed unsupported-version error naming both versions,
     never a silent partial decode *)
  let snap = capture_machine ~fault_seed:9 ~at:12 in
  let b = Bytes.of_string (Snapshot.encode snap) in
  Bytes.set b 4 '\x01';
  match Snapshot.decode (Bytes.to_string b) with
  | Error ({ section = "header"; offset = 4; _ } as e) ->
      let msg = Snapshot.error_to_string e in
      check_bool "error names the rejected version" true
        (contains msg "unsupported format version 1");
      check_bool "error names the expected version" true
        (contains msg (Printf.sprintf "expect %d" Snapshot.version))
  | Error e ->
      Alcotest.fail ("expected version error, got " ^ Snapshot.error_to_string e)
  | Ok _ -> Alcotest.fail "previous-version (v1) snapshot decoded"

let empty_and_trailing () =
  (match Snapshot.decode "" with
  | Error { section = "header"; _ } -> ()
  | _ -> Alcotest.fail "empty input must be a header error");
  let snap = capture_machine ~fault_seed:6 ~at:10 in
  let wire = Snapshot.encode snap in
  match Snapshot.decode (wire ^ "garbage") with
  | Error { section = "trailer"; _ } -> ()
  | Error e -> Alcotest.fail ("expected trailer error, got " ^ Snapshot.error_to_string e)
  | Ok _ -> Alcotest.fail "trailing bytes decoded"

(* ---------------- save / load ---------------- *)

let save_load_roundtrip () =
  let snap = capture_machine ~fault_seed:21 ~at:14 in
  let path = Filename.temp_file "fcsnap" ".fcsnap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Snapshot.save snap path;
      match Snapshot.load path with
      | Ok s -> check_bool "load = save" true (s = snap)
      | Error e -> Alcotest.fail (Snapshot.error_to_string e));
  match Snapshot.load "/nonexistent/snapshot.fcsnap" with
  | Error { section = "file"; _ } -> ()
  | _ -> Alcotest.fail "missing file must be a typed error"

(* ---------------- warm start ---------------- *)

let warm_start_parity () =
  let cold =
    Fc_benchkit.Fleet.run_cell (profiles ()) ~seed:7 ~domains:1 ~guests:6
  in
  let warm =
    Fc_benchkit.Fleet.run_cell ~warm_start:true (profiles ()) ~seed:7
      ~domains:1 ~guests:6
  in
  check_string "warm-start fleet fingerprint = cold boot"
    cold.Fc_benchkit.Fleet.c_report.Fc_host.Fleet.r_fingerprint
    warm.Fc_benchkit.Fleet.c_report.Fc_host.Fleet.r_fingerprint

(* ---------------- live migration ---------------- *)

let migrate_parity () =
  let t = Fc_benchkit.Migration.run ~fast:true (profiles ()) in
  check_bool "every migrated guest matches its control" true
    t.Fc_benchkit.Migration.g_parity_ok;
  check_int "no panics under governed migration" 0
    t.Fc_benchkit.Migration.g_panics;
  List.iter
    (fun (r : Fc_benchkit.Migration.row) ->
      check_bool "handoff happened" true r.Fc_benchkit.Migration.w_migrated;
      check_bool "final dirty set within the live set" true
        (r.Fc_benchkit.Migration.w_final_dirty
        <= r.Fc_benchkit.Migration.w_pages_total);
      check_bool "wire bytes are non-trivial" true
        (r.Fc_benchkit.Migration.w_snapshot_bytes > 1024))
    t.Fc_benchkit.Migration.g_rows

let migrate_precopy_drains () =
  (* more pre-copy rounds must not grow the final dirty set for the same
     seed: each extra iteration re-ships what the guest dirtied in a
     shorter trailing window *)
  let gseed = 424242 in
  let one precopy_rounds =
    let app = App.find_exn "top" in
    let os =
      Os.create ~config:(App.os_config app) (Profiles.image (profiles ()))
    in
    let hyp = Hyp.attach os in
    let fc = Facechange.enable hyp in
    let (_ : int) =
      Facechange.load_view fc (Profiles.config_of (profiles ()) "top")
    in
    let (_ : Process.t) = Os.spawn os ~name:"top" (app.App.script (4 + (gseed land 1))) in
    Os.run ~until:(fun t -> Os.round t >= 10) ~max_rounds:5_000 os;
    let guest =
      { Migrate.g_os = os; g_hyp = Some hyp; g_fc = Some fc; g_inj = None }
    in
    let dst, rep =
      Migrate.migrate ~image:(image ()) ~precopy_rounds ~window_rounds:8 guest
    in
    check_int "one pre-copy entry per iteration" precopy_rounds
      (List.length rep.Migrate.m_precopy);
    Os.run ~max_rounds:5_000 dst.Migrate.g_os;
    rep
  in
  let r1 = one 1 and r4 = one 4 in
  check_bool "downtime shrinks (or holds) with more pre-copy rounds" true
    (r4.Migrate.m_final_dirty <= r1.Migrate.m_final_dirty);
  check_bool "pre-copy ships more total pages" true
    (r4.Migrate.m_pages_copied >= r1.Migrate.m_pages_copied)

(* ---------------- the bounded recovery log ---------------- *)

let recovery_log_cap () =
  let log = Recovery_log.create ~cap:16 () in
  check_int "cap" 16 (Recovery_log.cap log);
  let entry i =
    {
      Recovery_log.cycle = i * 100;
      pid = 1;
      comm = "burst";
      view_app = "top";
      fault_addr = 0xc0100000 + (i * 2);
      recovered = [ (0xc0100000, 0xc0100040, Printf.sprintf "<f%d+0x0>" i) ];
      instant = [];
      backtrace = [];
      interrupt_context = false;
      unknown_frames = false;
    }
  in
  for i = 0 to 99 do
    Recovery_log.add log (entry i)
  done;
  let retained = List.length (Recovery_log.entries log) in
  check_bool "retained within cap" true (retained <= 16);
  check_int "count = retained + dropped" 100
    (retained + Recovery_log.dropped log);
  check_int "count tracks every add" 100 (Recovery_log.count log);
  (* the dropped counter survives the text round-trip the codec uses *)
  let log2 =
    match Recovery_log.of_string ~cap:16 (Recovery_log.to_string log) with
    | Ok l -> l
    | Error e -> Alcotest.fail e
  in
  Recovery_log.restore_dropped log2 (Recovery_log.dropped log);
  check_int "dropped restored" (Recovery_log.dropped log)
    (Recovery_log.dropped log2);
  check_int "entries restored" retained
    (List.length (Recovery_log.entries log2))

let dropped_gauge_registered () =
  let os = Os.create (image ()) in
  let hyp = Hyp.attach os in
  let (_ : Facechange.t) = Facechange.enable hyp in
  let m = Fc_obs.Obs.metrics (Os.obs os) in
  check_int "fc.recovery_log_dropped starts at 0" 0
    (Option.value ~default:(-1) (Metrics.find m "fc.recovery_log_dropped"))

(* ---------------- registration ---------------- *)

let suites =
  [
    ( "snapshot-differential",
      [
        Alcotest.test_case "no-sb + no-tlb" `Slow
          (differential_case ~sblocks:false ~tlb:false);
        Alcotest.test_case "no-sb + tlb" `Slow
          (differential_case ~sblocks:false ~tlb:true);
        Alcotest.test_case "sb + no-tlb" `Slow
          (differential_case ~sblocks:true ~tlb:false);
        Alcotest.test_case "sb + tlb" `Slow
          (differential_case ~sblocks:true ~tlb:true);
      ] );
    ( "snapshot-codec",
      [
        QCheck_alcotest.to_alcotest prop_roundtrip;
        QCheck_alcotest.to_alcotest prop_corrupt_total;
        Alcotest.test_case "corrupt errors name section and offset" `Quick
          corrupt_errors_name_sections;
        Alcotest.test_case "previous-version (v1) stream rejected" `Quick
          old_version_rejected;
        Alcotest.test_case "empty input and trailing bytes" `Quick
          empty_and_trailing;
        Alcotest.test_case "save/load roundtrip + missing file" `Quick
          save_load_roundtrip;
      ] );
    ( "snapshot-warm-start",
      [ Alcotest.test_case "fleet digest parity" `Slow warm_start_parity ] );
    ( "snapshot-migrate",
      [
        Alcotest.test_case "digest parity + zero panics" `Slow migrate_parity;
        Alcotest.test_case "pre-copy drains the dirty set" `Quick
          migrate_precopy_drains;
      ] );
    ( "snapshot-recovery-log",
      [
        Alcotest.test_case "retention cap + dropped counter" `Quick
          recovery_log_cap;
        Alcotest.test_case "fc.recovery_log_dropped gauge" `Quick
          dropped_gauge_registered;
      ] );
  ]
