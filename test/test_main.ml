let () =
  Alcotest.run "facechange"
    (Test_ranges.suites @ Test_isa.suites @ Test_mem.suites @ Test_sharing.suites @ Test_kernel.suites @ Test_machine.suites @ Test_core.suites @ Test_hypervisor.suites @ Test_apps.suites
     @ Test_attacks.suites @ Test_benchkit.suites @ Test_invariants.suites @ Test_behavior.suites @ Test_smp.suites @ Test_calltrace.suites @ Test_synth.suites
     @ Test_obs.suites @ Test_faults.suites @ Test_tlb.suites @ Test_fleet.suites @ Test_sblocks.suites @ Test_telemetry.suites @ Test_snapshot.suites)
