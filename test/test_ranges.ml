open Fc_ranges

let span lo hi = Span.make ~lo ~hi
let base = Segment.Base_kernel
let m name = Segment.Kernel_module name

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Span                                                                *)
(* ------------------------------------------------------------------ *)

let test_span_make_size () =
  check_int "size" 10 (Span.size (span 5 15));
  check_int "empty size" 0 (Span.size (span 7 7));
  check_bool "is_empty" true (Span.is_empty (span 7 7));
  check_bool "non-empty" false (Span.is_empty (span 7 8))

let test_span_make_invalid () =
  Alcotest.check_raises "hi < lo" (Invalid_argument "Span.make: hi < lo")
    (fun () -> ignore (span 10 5));
  Alcotest.check_raises "negative" (Invalid_argument "Span.make: negative lo")
    (fun () -> ignore (span (-1) 5))

let test_span_contains () =
  let s = span 10 20 in
  check_bool "lo in" true (Span.contains s 10);
  check_bool "hi out" false (Span.contains s 20);
  check_bool "mid in" true (Span.contains s 15);
  check_bool "below" false (Span.contains s 9)

let test_span_overlaps () =
  check_bool "overlap" true (Span.overlaps (span 0 10) (span 5 15));
  check_bool "adjacent not overlap" false (Span.overlaps (span 0 10) (span 10 20));
  check_bool "disjoint" false (Span.overlaps (span 0 10) (span 11 20));
  check_bool "empty never overlaps" false (Span.overlaps (span 5 5) (span 0 10));
  check_bool "contained" true (Span.overlaps (span 0 100) (span 40 50))

let test_span_adjacent () =
  check_bool "right" true (Span.adjacent (span 0 10) (span 10 20));
  check_bool "left" true (Span.adjacent (span 10 20) (span 0 10));
  check_bool "gap" false (Span.adjacent (span 0 10) (span 11 20))

let test_span_inter () =
  (match Span.inter (span 0 10) (span 5 15) with
  | Some s -> check_int "inter lo" 5 s.Span.lo; check_int "inter hi" 10 s.Span.hi
  | None -> Alcotest.fail "expected overlap");
  check_bool "disjoint inter" true (Span.inter (span 0 5) (span 6 9) = None);
  check_bool "adjacent inter" true (Span.inter (span 0 5) (span 5 9) = None)

let test_span_merge () =
  let s = Span.merge (span 0 10) (span 10 20) in
  check_int "merge lo" 0 s.Span.lo;
  check_int "merge hi" 20 s.Span.hi;
  Alcotest.check_raises "disjoint merge"
    (Invalid_argument "Span.merge: disjoint spans") (fun () ->
      ignore (Span.merge (span 0 5) (span 7 9)))

let test_span_shift () =
  let s = Span.shift (span 10 20) 100 in
  check_int "shift lo" 110 s.Span.lo;
  check_int "shift hi" 120 s.Span.hi

(* ------------------------------------------------------------------ *)
(* Segment                                                             *)
(* ------------------------------------------------------------------ *)

let test_segment_roundtrip () =
  List.iter
    (fun seg ->
      check_bool "roundtrip" true
        (Segment.equal seg (Segment.of_string (Segment.to_string seg))))
    [ base; m "ext4"; m "kvmclock" ]

let test_segment_of_string_invalid () =
  List.iter
    (fun s ->
      match Segment.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "expected failure on %S" s)
    [ "bogus"; "module:"; "Module:x"; "" ]

let test_segment_order () =
  check_bool "base < module" true (Segment.compare base (m "a") < 0);
  check_bool "modules by name" true (Segment.compare (m "a") (m "b") < 0);
  check_bool "equal" true (Segment.compare (m "a") (m "a") = 0)

(* ------------------------------------------------------------------ *)
(* Range_list                                                          *)
(* ------------------------------------------------------------------ *)

let test_rl_add_merges_adjacent () =
  let t = Range_list.empty in
  let t = Range_list.add_range t base ~lo:0 ~hi:10 in
  let t = Range_list.add_range t base ~lo:10 ~hi:20 in
  check_int "merged len" 1 (Range_list.len t);
  check_int "merged size" 20 (Range_list.size t)

let test_rl_add_merges_overlap () =
  let t = Range_list.of_list [ (base, span 0 10); (base, span 5 25) ] in
  check_int "len" 1 (Range_list.len t);
  check_int "size" 25 (Range_list.size t)

let test_rl_disjoint_spans () =
  let t = Range_list.of_list [ (base, span 0 10); (base, span 20 30) ] in
  check_int "len" 2 (Range_list.len t);
  check_int "size" 20 (Range_list.size t)

let test_rl_bridging_insert () =
  (* A middle insert that bridges two existing spans must collapse all
     three into one. *)
  let t = Range_list.of_list [ (base, span 0 10); (base, span 20 30); (base, span 8 22) ] in
  check_int "len" 1 (Range_list.len t);
  check_int "size" 30 (Range_list.size t)

let test_rl_segments_independent () =
  let t = Range_list.of_list [ (base, span 0 10); (m "ext4", span 0 10) ] in
  check_int "len counts both" 2 (Range_list.len t);
  check_int "size sums both" 20 (Range_list.size t);
  check_int "per-segment" 10 (Range_list.size_of_segment t base);
  check_bool "mem base" true (Range_list.mem t base 5);
  check_bool "mem module" true (Range_list.mem t (m "ext4") 5);
  check_bool "not mem other module" false (Range_list.mem t (m "snd") 5)

let test_rl_empty_span_ignored () =
  let t = Range_list.add Range_list.empty base (span 5 5) in
  check_bool "still empty" true (Range_list.is_empty t)

let test_rl_inter () =
  let a = Range_list.of_list [ (base, span 0 100); (m "x", span 0 50) ] in
  let b = Range_list.of_list [ (base, span 50 150); (m "y", span 0 50) ] in
  let i = Range_list.inter a b in
  check_int "inter size" 50 (Range_list.size i);
  check_bool "module disjoint" false (Range_list.mem i (m "x") 10)

let test_rl_inter_multi_span () =
  let a = Range_list.of_list [ (base, span 0 10); (base, span 20 30); (base, span 40 50) ] in
  let b = Range_list.of_list [ (base, span 5 45) ] in
  let i = Range_list.inter a b in
  check_int "len" 3 (Range_list.len i);
  check_int "size" 20 (Range_list.size i)

let test_rl_diff () =
  let a = Range_list.of_list [ (base, span 0 100) ] in
  let b = Range_list.of_list [ (base, span 20 30); (base, span 50 60) ] in
  let d = Range_list.diff a b in
  check_int "diff size" 80 (Range_list.size d);
  check_int "diff len" 3 (Range_list.len d);
  check_bool "hole" false (Range_list.mem d base 25);
  check_bool "kept" true (Range_list.mem d base 0)

let test_rl_union () =
  let a = Range_list.of_list [ (base, span 0 10) ] in
  let b = Range_list.of_list [ (base, span 5 20); (m "x", span 0 4) ] in
  let u = Range_list.union a b in
  check_int "union size" 24 (Range_list.size u);
  check_int "union len" 2 (Range_list.len u)

let test_rl_subset () =
  let a = Range_list.of_list [ (base, span 5 10) ] in
  let b = Range_list.of_list [ (base, span 0 20) ] in
  check_bool "subset" true (Range_list.subset a b);
  check_bool "not superset" false (Range_list.subset b a)

let test_rl_similarity () =
  (* Equation 1 worked example: |A|=100, |B|=50 fully inside A. *)
  let a = Range_list.of_list [ (base, span 0 100) ] in
  let b = Range_list.of_list [ (base, span 0 50) ] in
  Alcotest.(check (float 1e-9)) "S" 0.5 (Range_list.similarity a b);
  Alcotest.(check (float 1e-9)) "symmetric" 0.5 (Range_list.similarity b a);
  Alcotest.(check (float 1e-9)) "self" 1.0 (Range_list.similarity a a);
  Alcotest.(check (float 1e-9)) "empty" 0.0
    (Range_list.similarity Range_list.empty Range_list.empty)

let test_rl_covered_spans () =
  let t = Range_list.of_list [ (base, span 0 10); (base, span 20 30) ] in
  let parts = Range_list.covered_spans t base (span 5 25) in
  check_int "two parts" 2 (List.length parts);
  check_int "covered bytes" 10
    (List.fold_left (fun n s -> n + Span.size s) 0 parts)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_range_list =
  let open QCheck.Gen in
  let gen_span =
    map2 (fun lo len -> span lo (lo + len)) (int_bound 500) (int_bound 60)
  in
  let gen_seg =
    frequency [ (3, return base); (1, return (m "ext4")); (1, return (m "snd")) ]
  in
  map Range_list.of_list (list_size (int_bound 20) (pair gen_seg gen_span))

let arb_range_list =
  QCheck.make gen_range_list ~print:(fun t -> Format.asprintf "%a" Range_list.pp t)

let prop_normalized =
  QCheck.Test.make ~name:"range lists stay normalized (sorted, disjoint, non-adjacent)"
    ~count:300 arb_range_list (fun t ->
      List.for_all
        (fun seg ->
          let rec ok = function
            | [] | [ _ ] -> true
            | a :: (b :: _ as rest) ->
                (a : Span.t).hi < (b : Span.t).lo && ok rest
          in
          ok (Range_list.spans t seg))
        (Range_list.segments t))

let prop_inter_subset =
  QCheck.Test.make ~name:"inter is a subset of both" ~count:300
    (QCheck.pair arb_range_list arb_range_list) (fun (a, b) ->
      let i = Range_list.inter a b in
      Range_list.subset i a && Range_list.subset i b)

let prop_diff_disjoint =
  QCheck.Test.make ~name:"diff a b is disjoint from b and unions back to a"
    ~count:300
    (QCheck.pair arb_range_list arb_range_list) (fun (a, b) ->
      let d = Range_list.diff a b in
      Range_list.size (Range_list.inter d b) = 0
      && Range_list.equal (Range_list.union d (Range_list.inter a b)) a)

let prop_union_size =
  QCheck.Test.make ~name:"inclusion-exclusion: |a∪b| = |a|+|b|-|a∩b|" ~count:300
    (QCheck.pair arb_range_list arb_range_list) (fun (a, b) ->
      Range_list.size (Range_list.union a b)
      = Range_list.size a + Range_list.size b
        - Range_list.size (Range_list.inter a b))

let prop_similarity_bounds =
  QCheck.Test.make ~name:"similarity in [0,1], 1 iff equal (non-empty)" ~count:300
    (QCheck.pair arb_range_list arb_range_list) (fun (a, b) ->
      let s = Range_list.similarity a b in
      s >= 0. && s <= 1.
      && ((not (Range_list.equal a b)) || Range_list.is_empty a || s = 1.0))

let prop_mem_matches_to_list =
  QCheck.Test.make ~name:"mem agrees with to_list coverage" ~count:200
    (QCheck.pair arb_range_list QCheck.(int_bound 600)) (fun (t, addr) ->
      List.for_all
        (fun seg ->
          Range_list.mem t seg addr
          = List.exists
              (fun (sg, s) -> Segment.equal sg seg && Span.contains s addr)
              (Range_list.to_list t))
        [ base; m "ext4"; m "snd" ])

let qsuite = List.map QCheck_alcotest.to_alcotest
  [
    prop_normalized;
    prop_inter_subset;
    prop_diff_disjoint;
    prop_union_size;
    prop_similarity_bounds;
    prop_mem_matches_to_list;
  ]

(* ------------------------------------------------------------------ *)
(* Seeded model battery: Range_list vs a naive bitset                  *)
(*                                                                     *)
(* The interval-index representation is checked against the dumbest    *)
(* possible model — one boolean per address per segment — over seeded  *)
(* random workloads, so every run exercises the same cases.            *)
(* ------------------------------------------------------------------ *)

let addr_limit = 640
let model_segs = [ base; m "ext4"; m "snd" ]

let model_create () =
  List.map (fun s -> (s, Array.make addr_limit false)) model_segs

let model_set bits seg ~lo ~hi =
  let a = List.assoc seg bits in
  for i = lo to hi - 1 do
    a.(i) <- true
  done

let model_mem bits seg i = (List.assoc seg bits).(i)

let model_size bits =
  List.fold_left
    (fun n (_, a) ->
      n + Array.fold_left (fun n b -> if b then n + 1 else n) 0 a)
    0 bits

(* maximal runs of set bits = normalized span count *)
let model_len bits =
  List.fold_left
    (fun n (_, a) ->
      let runs = ref 0 in
      Array.iteri (fun i b -> if b && (i = 0 || not a.(i - 1)) then incr runs) a;
      n + !runs)
    0 bits

let model_equal ba bb =
  List.for_all2 (fun (_, a) (_, b) -> a = b) ba bb

(* one random range list built by random inserts, plus its model *)
let gen_model_pair rng =
  let nspans = 1 + Random.State.int rng 24 in
  let t = ref Range_list.empty in
  let bits = model_create () in
  for _ = 1 to nspans do
    let seg = List.nth model_segs (Random.State.int rng (List.length model_segs)) in
    let lo = Random.State.int rng (addr_limit - 80) in
    let hi = lo + Random.State.int rng 80 in
    t := Range_list.add_range !t seg ~lo ~hi;
    model_set bits seg ~lo ~hi
  done;
  (!t, bits)

let check_matches_model msg t bits =
  List.iter
    (fun seg ->
      for i = 0 to addr_limit - 1 do
        if Range_list.mem t seg i <> model_mem bits seg i then
          Alcotest.failf "%s: mem mismatch at %s/%d" msg (Segment.to_string seg) i
      done)
    model_segs

let check_normalized msg t =
  List.iter
    (fun seg ->
      let rec ok = function
        | [] | [ _ ] -> true
        | a :: (b :: _ as rest) -> (a : Span.t).hi < (b : Span.t).lo && ok rest
      in
      if not (ok (Range_list.spans t seg)) then
        Alcotest.failf "%s: %s spans not sorted/disjoint/non-adjacent" msg
          (Segment.to_string seg))
    (Range_list.segments t)

let test_model_insert_normalize () =
  let rng = Random.State.make [| 0xFACE; 1 |] in
  for trial = 1 to 60 do
    let msg = Printf.sprintf "trial %d" trial in
    let t, bits = gen_model_pair rng in
    check_matches_model msg t bits;
    check_normalized msg t;
    check_int (msg ^ ": size") (model_size bits) (Range_list.size t);
    check_int (msg ^ ": len") (model_len bits) (Range_list.len t)
  done

let test_model_algebra () =
  let rng = Random.State.make [| 0xFACE; 2 |] in
  for trial = 1 to 40 do
    let msg = Printf.sprintf "trial %d" trial in
    let ta, ba = gen_model_pair rng in
    let tb, bb = gen_model_pair rng in
    let u = Range_list.union ta tb in
    let i = Range_list.inter ta tb in
    let d = Range_list.diff ta tb in
    List.iter (fun t -> check_normalized msg t) [ u; i; d ];
    List.iter
      (fun seg ->
        for x = 0 to addr_limit - 1 do
          let a = model_mem ba seg x and b = model_mem bb seg x in
          if Range_list.mem u seg x <> (a || b) then
            Alcotest.failf "%s: union mismatch at %d" msg x;
          if Range_list.mem i seg x <> (a && b) then
            Alcotest.failf "%s: inter mismatch at %d" msg x;
          if Range_list.mem d seg x <> (a && not b) then
            Alcotest.failf "%s: diff mismatch at %d" msg x
        done)
      model_segs;
    check_bool (msg ^ ": equal agrees with model") (model_equal ba bb)
      (Range_list.equal ta tb);
    check_bool (msg ^ ": subset agrees with model")
      (List.for_all
         (fun seg ->
           let rec go x =
             x >= addr_limit
             || ((not (model_mem ba seg x)) || model_mem bb seg x) && go (x + 1)
           in
           go 0)
         model_segs)
      (Range_list.subset ta tb)
  done

let test_model_covered_spans () =
  let rng = Random.State.make [| 0xFACE; 3 |] in
  for trial = 1 to 40 do
    let msg = Printf.sprintf "trial %d" trial in
    let t, bits = gen_model_pair rng in
    for _ = 1 to 10 do
      let lo = Random.State.int rng (addr_limit - 100) in
      let window = span lo (lo + 1 + Random.State.int rng 100) in
      let seg = List.nth model_segs (Random.State.int rng (List.length model_segs)) in
      let parts = Range_list.covered_spans t seg window in
      (* parts are clipped to the window, sorted, disjoint *)
      List.iter
        (fun (s : Span.t) ->
          if s.lo < window.Span.lo || s.hi > window.Span.hi || Span.is_empty s
          then Alcotest.failf "%s: part outside window" msg)
        parts;
      let rec sorted = function
        | [] | [ _ ] -> true
        | (a : Span.t) :: (b :: _ as rest) -> a.hi <= (b : Span.t).lo && sorted rest
      in
      if not (sorted parts) then Alcotest.failf "%s: parts unsorted" msg;
      (* pointwise coverage within the window matches the model *)
      for x = window.Span.lo to window.Span.hi - 1 do
        let covered = List.exists (fun s -> Span.contains s x) parts in
        if covered <> model_mem bits seg x then
          Alcotest.failf "%s: covered_spans mismatch at %d" msg x
      done
    done
  done

let test_model_similarity () =
  let rng = Random.State.make [| 0xFACE; 4 |] in
  for trial = 1 to 40 do
    let msg = Printf.sprintf "trial %d" trial in
    let ta, ba = gen_model_pair rng in
    let tb, bb = gen_model_pair rng in
    let inter_pop =
      List.fold_left
        (fun n seg ->
          let acc = ref n in
          for x = 0 to addr_limit - 1 do
            if model_mem ba seg x && model_mem bb seg x then incr acc
          done;
          !acc)
        0 model_segs
    in
    let pa = model_size ba and pb = model_size bb in
    let expected =
      if max pa pb = 0 then 0.
      else float_of_int inter_pop /. float_of_int (max pa pb)
    in
    let s = Range_list.similarity ta tb in
    Alcotest.(check (float 1e-9)) (msg ^ ": similarity matches model") expected s;
    Alcotest.(check (float 1e-9)) (msg ^ ": symmetric") s
      (Range_list.similarity tb ta);
    check_bool (msg ^ ": bounded") true (s >= 0. && s <= 1.)
  done

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "ranges.span",
      [
        tc "make/size/is_empty" test_span_make_size;
        tc "invalid make" test_span_make_invalid;
        tc "contains" test_span_contains;
        tc "overlaps" test_span_overlaps;
        tc "adjacent" test_span_adjacent;
        tc "inter" test_span_inter;
        tc "merge" test_span_merge;
        tc "shift" test_span_shift;
      ] );
    ( "ranges.segment",
      [
        tc "to_string/of_string roundtrip" test_segment_roundtrip;
        tc "of_string rejects garbage" test_segment_of_string_invalid;
        tc "ordering" test_segment_order;
      ] );
    ( "ranges.range_list",
      [
        tc "adjacent spans merge" test_rl_add_merges_adjacent;
        tc "overlapping spans merge" test_rl_add_merges_overlap;
        tc "disjoint spans stay separate" test_rl_disjoint_spans;
        tc "bridging insert collapses" test_rl_bridging_insert;
        tc "segments are independent" test_rl_segments_independent;
        tc "empty spans ignored" test_rl_empty_span_ignored;
        tc "inter" test_rl_inter;
        tc "inter over multiple spans" test_rl_inter_multi_span;
        tc "diff" test_rl_diff;
        tc "union" test_rl_union;
        tc "subset" test_rl_subset;
        tc "similarity (Equation 1)" test_rl_similarity;
        tc "covered_spans" test_rl_covered_spans;
      ] );
    ("ranges.properties", qsuite);
    ( "ranges.model",
      [
        tc "seeded inserts match bitset model; stay normalized"
          test_model_insert_normalize;
        tc "union/inter/diff/equal/subset match bitset model" test_model_algebra;
        tc "covered_spans matches bitset model" test_model_covered_spans;
        tc "similarity matches bitset model; symmetric, bounded"
          test_model_similarity;
      ] );
  ]
