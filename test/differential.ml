(* Differential-testing harness: run the same randomized, fault-injected
   guest under different execution-engine configurations and digest
   everything observable about the run into one comparable fingerprint.

   The execution fast paths — the software TLBs ([?tlb]), the
   decode-once superblocks ([?sblocks]) and view-tagged translation
   caching ([?tagged]) — are sound only if they are behavior-invisible:
   a guest must retire the same instructions, charge the same cycles,
   emit the same per-instruction and call/return traces, and capture
   identical stats with any combination of them enabled, even while a
   fault plan is switching views, injecting spurious exits and storming
   the recovery governor underneath.  test_tlb.ml and test_sblocks.ml
   both drive their parity properties through this module. *)

module Os = Fc_machine.Os
module Process = Fc_machine.Process
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Governor = Fc_core.Governor
module Stats = Fc_core.Stats
module App = Fc_apps.App
module Profiles = Fc_benchkit.Profiles
module Fault = Fc_faults.Fault
module Frand = Fc_faults.Frand
module Injector = Fc_faults.Injector
module Metrics = Fc_obs.Metrics
module J = Fc_obs.Jsonx

(* Everything observable about a run, trace streams included, digested
   into a comparable tuple.  [Stats.capture] is the fixed-field
   projection the chaos matrix pins; the instruction/event digests catch
   divergence stats would miss.  Engine-internal counters ([tlb.*],
   [sb.*]) are deliberately outside the fingerprint: they are exactly
   what is allowed to differ. *)
type fingerprint = {
  fp_outcome : string;
  fp_stats : string;
  fp_instructions : int;
  fp_cycles : int;
  fp_insn_digest : int;
  fp_event_digest : int;
  fp_series : string;
      (* Timeseries.fingerprint of the armed telemetry probe: interval
         boundaries and per-interval deltas (engine counters excluded)
         must not move under any engine toggle — the ticker fires at
         instruction marks, and instruction retirement is pinned *)
  fp_sampler : string; (* Sampler.fingerprint: the folded profiler stacks *)
}

(* Engine counters of the run, reported alongside the fingerprint so
   tests can assert the fast paths actually engaged (or stayed silent)
   without polluting the parity comparison. *)
type engine = {
  en_sb_built : int;
  en_sb_hits : int;
  en_sb_invalidations : int;
  en_sb_chain_follows : int;
  en_itlb_hits : int;
}

(* The full {sblocks} x {tlb} matrix, baseline first. *)
let configs = [ (false, false); (false, true); (true, false); (true, true) ]

(* The {tagged} x {sblocks} x {tlb} cube: the view-tag dimension crossed
   with every engine combination tags interact with. *)
let tagged_configs =
  List.concat_map
    (fun tagged -> List.map (fun (sb, tlb) -> (tagged, sb, tlb)) configs)
    [ false; true ]

let describe ?tagged ~sblocks ~tlb () =
  Printf.sprintf "%s%s+%s"
    (match tagged with
    | None -> ""
    | Some true -> "tag+"
    | Some false -> "untag+")
    (if sblocks then "sb" else "no-sb")
    (if tlb then "tlb" else "no-tlb")

(* One enforced run: a random application from the pool (plus a fixed
   companion, so context switches and cross-app view switching happen), a
   random fault plan derived from the seed, FACE-CHANGE enabled with the
   default governor, full tracing armed. *)
let run ?(tagged = true) ~profiles ~sblocks ~tlb ~fault_seed () =
  let r = Frand.create (fault_seed lxor 0x7157) in
  let pool = [ "top"; "apache"; "gvim"; "bash"; "gzip" ] in
  let name = Frand.pick r pool in
  let n = 4 + Frand.int r 7 in
  let plan = Fault.gen ~seed:fault_seed ~rounds:120 ~n in
  let app = App.find_exn name in
  let os =
    Os.create ~config:(App.os_config app) ~tlb ~sblocks ~tagged
      (Profiles.image profiles)
  in
  let ih = ref 0 and eh = ref 0 in
  Os.set_trace os (Some (fun a len -> ih := (((!ih * 31) + a) * 31) + len));
  Os.set_event_trace os (Some (fun ev -> eh := (!eh * 31) + Hashtbl.hash ev));
  let hyp = Hyp.attach os in
  let fc = Facechange.enable ~governor:Governor.default_policy hyp in
  let (_ : int) = Facechange.load_view fc (Profiles.config_of profiles name) in
  let (_ : Process.t) = Os.spawn os ~name (app.App.script 4) in
  let companion = App.find_exn "top" in
  let (_ : Process.t) =
    Os.spawn os ~name:"companion" (companion.App.script 2)
  in
  (* the probe is always armed here: every parity property this harness
     proves now also proves that sampling telemetry is behavior-invisible
     (it shares the run with pinned instruction/event digests) *)
  let probe = Fc_benchkit.Probe.arm ~period:25_000 ~os ~hyp ~fc () in
  let inj = Injector.arm ~os ~hyp ~fc plan in
  let outcome =
    match Os.run ~max_rounds:20_000 os with
    | () -> "ok"
    | exception Os.Guest_panic m -> "panic: " ^ m
  in
  Injector.disarm inj;
  let telemetry = Fc_benchkit.Probe.finish probe in
  (match telemetry.Fc_benchkit.Probe.r_resum_errors with
  | [] -> ()
  | e :: _ -> failwith ("telemetry deltas fail to re-sum: " ^ e));
  let m = Fc_obs.Obs.metrics (Os.obs os) in
  let c key = Option.value ~default:0 (Metrics.find m key) in
  ( {
      fp_outcome = outcome;
      fp_stats = J.to_string (Stats.to_json (Stats.capture fc));
      fp_instructions = Os.instructions os;
      fp_cycles = Os.cycles os;
      fp_insn_digest = !ih;
      fp_event_digest = !eh;
      fp_series =
        Fc_obs.Timeseries.fingerprint telemetry.Fc_benchkit.Probe.r_series;
      fp_sampler =
        Fc_obs.Sampler.fingerprint telemetry.Fc_benchkit.Probe.r_folds;
    },
    {
      en_sb_built = c "sb.blocks_built";
      en_sb_hits = c "sb.hits";
      en_sb_invalidations = c "sb.invalidations";
      en_sb_chain_follows = c "sb.chain_follows";
      en_itlb_hits = c "tlb.i_hits";
    } )

let fingerprint ?(tagged = true) ~profiles ~sblocks ~tlb ~fault_seed () =
  fst (run ~tagged ~profiles ~sblocks ~tlb ~fault_seed ())

(* Field-by-field Alcotest comparison: a mismatch names the diverging
   observable instead of dumping two opaque tuples. *)
let check_parity ~label ~expect ~got =
  Alcotest.(check string) (label ^ ": outcome") expect.fp_outcome got.fp_outcome;
  Alcotest.(check string) (label ^ ": stats capture") expect.fp_stats
    got.fp_stats;
  Alcotest.(check int)
    (label ^ ": instructions retired")
    expect.fp_instructions got.fp_instructions;
  Alcotest.(check int) (label ^ ": cycles") expect.fp_cycles got.fp_cycles;
  Alcotest.(check int)
    (label ^ ": instruction trace")
    expect.fp_insn_digest got.fp_insn_digest;
  Alcotest.(check int)
    (label ^ ": call/return events")
    expect.fp_event_digest got.fp_event_digest;
  Alcotest.(check string)
    (label ^ ": telemetry series (interval boundaries + deltas)")
    expect.fp_series got.fp_series;
  Alcotest.(check string)
    (label ^ ": profiler folds")
    expect.fp_sampler got.fp_sampler
